//! Comment/string-stripping pre-pass.
//!
//! [`scrub`] returns the source with every comment, string literal and char
//! literal replaced by spaces — same character count, newlines preserved — so
//! the token scanner never matches rule patterns inside prose or literals.
//! Line comments are inspected for `lint:allow(...)` directives before they
//! are blanked.
//!
//! The stripper understands line comments, nested block comments, normal and
//! byte strings with escapes, raw (byte) strings `r#"..."#`, char and byte
//! literals, and disambiguates `'a'` (char) from `'a` (lifetime/label).

/// A parsed `// lint:allow(RULE[, RULE...], reason = "...")` directive.
///
/// A trailing directive applies to the code on its own line; a directive on a
/// line of its own (`standalone`) applies to the next line that carries code.
/// Malformed directives keep `error` set and suppress nothing.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based source line the comment appears on.
    pub line: usize,
    /// True when nothing but whitespace precedes the comment on its line.
    pub standalone: bool,
    /// Rule families (`D1`) or full codes (`D1.iter`) being allowed.
    pub rules: Vec<String>,
    /// The mandatory justification string.
    pub reason: Option<String>,
    /// Set when the directive could not be parsed; reported as `L1.allow`.
    pub error: Option<String>,
}

/// Result of [`scrub`]: blanked source plus the allow directives found.
#[derive(Debug)]
pub struct Scrubbed {
    pub text: String,
    pub allows: Vec<AllowDirective>,
}

pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Blank `chars[start..end]` with spaces, preserving newlines.
fn blank(out: &mut [char], start: usize, end: usize) {
    for c in out.iter_mut().take(end).skip(start) {
        if *c != '\n' {
            *c = ' ';
        }
    }
}

/// 1-based line number of character index `idx` given sorted line starts.
fn line_of(line_starts: &[usize], idx: usize) -> usize {
    match line_starts.binary_search(&idx) {
        Ok(l) => l + 1,
        Err(l) => l,
    }
}

/// End index (exclusive) of a normal string literal opening at `i`.
fn string_end(chars: &[char], i: usize) -> usize {
    let n = chars.len();
    let mut k = i + 1;
    while k < n {
        match chars[k] {
            '\\' => k += 2,
            '"' => return k + 1,
            _ => k += 1,
        }
    }
    n
}

/// End index (exclusive) of a char/byte literal whose opening quote is at
/// `quote`. Assumes the caller already decided it is a literal, not a
/// lifetime.
fn char_literal_end(chars: &[char], quote: usize) -> usize {
    let n = chars.len();
    let mut k = quote + 1;
    while k < n {
        match chars[k] {
            '\\' => k += 2,
            '\'' => return k + 1,
            _ => k += 1,
        }
    }
    n
}

/// If `i` starts a raw string, byte string or byte char (`r"`, `r#"`, `b"`,
/// `b'`, `br"`, `br#"`), return its end index (exclusive).
fn raw_or_byte_end(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j >= n {
            return None;
        }
        match chars[j] {
            '\'' => return Some(char_literal_end(chars, j)),
            '"' => return Some(string_end(chars, j)),
            'r' => {} // fall through to raw handling below
            _ => return None,
        }
    }
    if chars[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None; // raw identifier like `r#type`, or a lone `r` ident
    }
    // Scan for `"` followed by `hashes` hash marks.
    let mut k = j + 1;
    while k < n {
        if chars[k] == '"' {
            let close_end = k + 1 + hashes;
            if close_end <= n && chars[k + 1..close_end].iter().all(|&c| c == '#') {
                return Some(close_end);
            }
        }
        k += 1;
    }
    Some(n)
}

/// Parse one comment's allow payload, if present.
///
/// The directive must *start* the comment (after the `//` and whitespace),
/// so prose that merely mentions the syntax is never treated as a
/// directive.
fn parse_allow(comment: &str, line: usize, standalone: bool) -> Option<AllowDirective> {
    let content = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    if !content.starts_with("lint:allow") {
        return None;
    }
    let at = content.find("lint:allow")?;
    let comment = content;
    let mut d = AllowDirective {
        line,
        standalone,
        rules: Vec::new(),
        reason: None,
        error: None,
    };
    let rest = comment[at + "lint:allow".len()..].trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        d.error = Some("expected `(` after `lint:allow`".to_string());
        return Some(d);
    };
    // Split the parenthesized body at top-level commas, respecting quotes.
    let mut items: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut depth = 1usize;
    let mut closed = false;
    for c in body.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.push(c);
            }
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    closed = true;
                    break;
                }
                cur.push(c);
            }
            ',' if depth == 1 => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !closed {
        d.error = Some("unterminated `lint:allow(` — missing `)`".to_string());
        return Some(d);
    }
    items.push(cur);
    for item in items {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(rest) = item.strip_prefix("reason") {
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                d.error = Some("expected `reason = \"...\"`".to_string());
                continue;
            };
            let rest = rest.trim();
            let unquoted = rest
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::trim);
            match unquoted {
                Some("") | None => {
                    d.error = Some("`reason` must be a non-empty quoted string".to_string());
                }
                Some(r) => d.reason = Some(r.to_string()),
            }
        } else if item.chars().all(|c| is_ident_char(c) || c == '.') {
            d.rules.push(item.to_string());
        } else {
            d.error = Some(format!("unrecognized item `{item}` in lint:allow"));
        }
    }
    if d.error.is_none() {
        if d.rules.is_empty() {
            d.error = Some("lint:allow names no rules".to_string());
        } else if d.reason.is_none() {
            d.error = Some("lint:allow requires `reason = \"...\"`".to_string());
        }
    }
    Some(d)
}

/// Strip comments and literals from `src`, collecting allow directives.
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = chars.clone();
    let mut allows = Vec::new();

    let mut line_starts = vec![0usize];
    for (idx, &c) in chars.iter().enumerate() {
        if c == '\n' {
            line_starts.push(idx + 1);
        }
    }

    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                let line = line_of(&line_starts, start);
                let line_begin = line_starts[line - 1];
                let standalone = chars[line_begin..start].iter().all(|c| c.is_whitespace());
                if let Some(d) = parse_allow(&comment, line, standalone) {
                    allows.push(d);
                }
                blank(&mut out, start, i);
            }
            '/' if next == Some('*') => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            '"' => {
                let end = string_end(&chars, i);
                blank(&mut out, i, end);
                i = end;
            }
            '\'' => {
                // Char literal vs lifetime/label: `'\...'` and `'x'` are
                // literals; anything else (`'a`, `'static`) is left alone.
                if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                    let end = char_literal_end(&chars, i);
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            'r' | 'b' if i == 0 || !is_ident_char(chars[i - 1]) => {
                if let Some(end) = raw_or_byte_end(&chars, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    Scrubbed {
        text: out.into_iter().collect(),
        allows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let s = scrub("let x = 1; // trailing .unwrap()\nlet y = 2;\n");
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("let y = 2;"));
        assert_eq!(
            s.text.len(),
            "let x = 1; // trailing .unwrap()\nlet y = 2;\n".len()
        );
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = scrub("a /* one /* two */ still comment */ b");
        assert!(s.text.starts_with('a'));
        assert!(s.text.ends_with('b'));
        assert!(!s.text.contains("comment"));
    }

    #[test]
    fn strings_and_raw_strings_are_blanked() {
        let s = scrub(r##"let a = "m.iter()"; let b = r#"panic!("x")"#; let c = 'x';"##);
        assert!(!s.text.contains("iter"));
        assert!(!s.text.contains("panic"));
        assert!(!s.text.contains('x'));
        assert!(s.text.contains("let a ="));
        assert!(s.text.contains("let c ="));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let s = scrub(r#"let a = "he said \"m.keys()\""; let b = 1;"#);
        assert!(!s.text.contains("keys"));
        assert!(s.text.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'q'; let esc = '\\n'; }");
        assert!(s.text.contains("<'a>"));
        assert!(s.text.contains("&'a str"));
        assert!(!s.text.contains('q'));
        assert!(!s.text.contains("\\n"));
    }

    #[test]
    fn newlines_inside_literals_are_preserved() {
        let src = "let a = \"line1\nline2\"; /* c\nc */ let b = 1;\n";
        let s = scrub(src);
        assert_eq!(
            s.text.chars().filter(|&c| c == '\n').count(),
            src.chars().filter(|&c| c == '\n').count()
        );
    }

    #[test]
    fn allow_directive_trailing_and_standalone() {
        let src = "\
let a = m.iter(); // lint:allow(D1, reason = \"snapshot is sorted below\")
// lint:allow(P1, reason = \"checked above\")
let b = x.unwrap();
";
        let s = scrub(src);
        assert_eq!(s.allows.len(), 2);
        assert!(!s.allows[0].standalone);
        assert_eq!(s.allows[0].line, 1);
        assert_eq!(s.allows[0].rules, vec!["D1".to_string()]);
        assert_eq!(
            s.allows[0].reason.as_deref(),
            Some("snapshot is sorted below")
        );
        assert!(s.allows[1].standalone);
        assert_eq!(s.allows[1].line, 2);
    }

    #[test]
    fn allow_directive_requires_reason() {
        let s = scrub("let a = 1; // lint:allow(D1)\n");
        assert_eq!(s.allows.len(), 1);
        assert!(s.allows[0].error.is_some());

        let s = scrub("let a = 1; // lint:allow(D1, reason = \"\")\n");
        assert!(s.allows[0].error.is_some());

        let s = scrub("let a = 1; // lint:allow(reason = \"why\")\n");
        assert!(s.allows[0].error.is_some());
    }

    #[test]
    fn allow_directive_multiple_rules_and_parens_in_reason() {
        let s =
            scrub("x(); // lint:allow(D1, H1.alloc, reason = \"see fn docs (amortized O(1))\")\n");
        assert_eq!(s.allows.len(), 1);
        let d = &s.allows[0];
        assert!(d.error.is_none(), "{:?}", d.error);
        assert_eq!(d.rules, vec!["D1".to_string(), "H1.alloc".to_string()]);
        assert_eq!(d.reason.as_deref(), Some("see fn docs (amortized O(1))"));
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        let s = scrub("/// Suppress with a `// lint:allow(RULE, reason = \"...\")` comment.\n");
        assert!(s.allows.is_empty());
        let s = scrub("// docs discuss lint:allow syntax here\n");
        assert!(s.allows.is_empty());
    }

    #[test]
    fn byte_literals_are_blanked() {
        let s = scrub("let a = b\"bytes\"; let b = b'z'; let c = br#\"raw.iter()\"#;");
        assert!(!s.text.contains("bytes"));
        assert!(!s.text.contains('z'));
        assert!(!s.text.contains("iter"));
    }
}
