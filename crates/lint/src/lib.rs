//! `scream-lint` — the workspace static-analysis pass.
//!
//! Mechanizes the conventions ROADMAP.md states in prose, as four rule
//! families over non-test library code:
//!
//! | family | codes | invariant |
//! |--------|-------|-----------|
//! | **D1** | `D1.iter`, `D1.clock` | determinism: no hash-order iteration, no wall clocks / unseeded rng |
//! | **P1** | `P1.panic` | panic-freedom: `unwrap`/`expect`/`panic!` need an allow or the committed baseline |
//! | **H1** | `H1.hot`, `H1.alloc` | hot-path: no `.slots()` expansion / per-unit baselines; no ledger construction in loops |
//! | **F1** | `F1.cmp`, `F1.eq` | float hygiene: `total_cmp` over `partial_cmp(..).unwrap()`; no exact float equality in verdicts |
//! | **U1** | `U1.mix`, `U1.bind`, `U1.conv` | unit hygiene: no cross-unit arithmetic/binding on suffix-tagged quantities; honest conversion calls |
//! | **O1** | `O1.sink` | observability: obs emission arguments stay allocation-free (`&'static str` + `u64`), so a disabled sink is a true no-op |
//! | **P2** | `P2.reach` | panic reachability: no *new* public API may transitively reach a P1 panic site (`p2_reach.txt` ratchet) |
//!
//! Plus **L1** for the allow mechanism itself: malformed/unknown/unused
//! `// lint:allow(RULE, reason = "...")` directives.
//!
//! The scanner is lexical-plus-symbolic (scrubbing lexer + token patterns +
//! brace tracking + a per-file symbol indexer and workspace call graph) —
//! no syn, no rustc, zero dependencies — so it runs before the workspace
//! compiles and inside the offline build container.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod scan;
pub mod symbols;
pub mod units;

pub use scan::{Diagnostic, RuleCode, ScanPolicy};

use std::collections::BTreeSet;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A run configuration, usually built by the CLI.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding the `[workspace]` Cargo.toml).
    pub root: PathBuf,
    /// P1 baseline file; defaults to `crates/lint/p1_baseline.txt`.
    pub baseline_path: PathBuf,
    /// P2 reach report; defaults to `crates/lint/p2_reach.txt`.
    pub reach_path: PathBuf,
    /// Regenerate the P1 baseline and P2 reach report from current state.
    pub write_baseline: bool,
    /// `--deny`/`--warn` overrides in CLI order: `None` selector = all
    /// rules, `Some(name)` = one family (`D1`) or code (`D1.iter`).
    pub class_overrides: Vec<(Option<String>, bool)>,
}

impl Config {
    pub fn new(root: PathBuf) -> Self {
        let baseline_path = default_baseline_path(&root);
        let reach_path = default_reach_path(&root);
        Config {
            root,
            baseline_path,
            reach_path,
            write_baseline: false,
            class_overrides: Vec::new(),
        }
    }
}

pub fn default_baseline_path(root: &Path) -> PathBuf {
    root.join("crates").join("lint").join("p1_baseline.txt")
}

pub fn default_reach_path(root: &Path) -> PathBuf {
    root.join("crates").join("lint").join("p2_reach.txt")
}

/// A file whose current P1 count exceeds its committed baseline.
#[derive(Debug, Clone)]
pub struct BaselineViolation {
    pub path: String,
    pub current: usize,
    pub allowed: usize,
}

/// The outcome of a workspace lint run.
#[derive(Debug)]
pub struct Report {
    pub files_scanned: usize,
    /// Active findings (allow-filtered, baseline-filtered), sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// P1 sites absorbed by the committed baseline (visible in `--json`).
    pub baselined: Vec<Diagnostic>,
    /// Files over their committed P1 count; always a failure.
    pub baseline_violations: Vec<BaselineViolation>,
    pub p1_current: usize,
    pub p1_baseline: usize,
    /// Current P2 reach entries (public fns that transitively reach a panic).
    pub p2_entries: BTreeSet<String>,
    /// Entry count in the committed `p2_reach.txt`.
    pub p2_committed: usize,
    /// New panic-reachable public APIs: `(entry, path, line)`. Like P1
    /// baseline violations, growth always fails the run.
    pub p2_violations: Vec<(String, String, usize)>,
    pub baseline_written: bool,
}

impl Report {
    pub fn deny_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.deny).count()
    }

    pub fn warn_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.deny).count()
    }

    /// True when the run should fail the build.
    pub fn failed(&self) -> bool {
        self.deny_count() > 0
            || !self.baseline_violations.is_empty()
            || !self.p2_violations.is_empty()
    }
}

/// Walk up from `start` to the directory whose Cargo.toml declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Per-crate rule policy. `compat` shims and `src/bin/` tool surfaces are
/// not scanned at all; `bench` keeps wall-clock access; float-equality
/// checks apply to the verdict-producing crates. `obs` itself gets no
/// exemption: the observability layer speaks logical time only, so
/// D1.clock stays banned there, and O1.sink holds everywhere instrumented
/// code emits into it.
fn crate_policy(krate: &str) -> ScanPolicy {
    ScanPolicy {
        hash_iter: true,
        wall_clock: krate != "bench",
        float_eq: matches!(krate, "traffic" | "resilience" | "analysis"),
        units: true,
        obs_sink: true,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = std::fs::read_dir(dir)?;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `src/bin/` binaries are tool surfaces (bench drivers), exempt
            // like `benches/` and `examples/`.
            if name != "bin" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every library source file in the workspace, as `(crate, relative path)`,
/// sorted by path for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    fn push_crate(
        krate: &str,
        src_dir: &Path,
        files: &mut Vec<(String, PathBuf)>,
    ) -> io::Result<()> {
        let mut found = Vec::new();
        if src_dir.is_dir() {
            collect_rs_files(src_dir, &mut found)?;
        }
        for f in found {
            files.push((krate.to_string(), f));
        }
        Ok(())
    }

    let mut files: Vec<(String, PathBuf)> = Vec::new();

    // Root facade crate.
    push_crate("scream", &root.join("src"), &mut files)?;

    // crates/<name>/src, skipping the offline compat shims.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            if name == "compat" {
                continue;
            }
            push_crate(&name, &path.join("src"), &mut files)?;
        }
    }

    files.sort();
    Ok(files)
}

fn relative_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize separators so baselines and allows are portable.
    rel.to_string_lossy().replace('\\', "/")
}

/// Run the full workspace lint.
pub fn lint_workspace(cfg: &Config) -> io::Result<Report> {
    let files = workspace_files(&cfg.root)?;
    let mut active: Vec<Diagnostic> = Vec::new();
    let mut p1_by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let files_scanned = files.len();

    // Per-file inputs retained to feed the P2 call-graph pass after the walk:
    // (crate, rel path, symbols, surviving panic lines, p2-allowed lines).
    type GraphInput = (String, String, symbols::FileSymbols, Vec<usize>, Vec<usize>);
    let mut graph_inputs: Vec<GraphInput> = Vec::new();

    for (krate, path) in &files {
        let rel = relative_to(&cfg.root, path);
        let src = std::fs::read_to_string(path)?;
        let policy = crate_policy(krate);
        let scanned = scan::scan_file(&rel, &src, policy);
        for diag in scanned.diagnostics {
            if diag.rule == RuleCode::P1Panic {
                p1_by_file.entry(rel.clone()).or_default().push(diag);
            } else {
                active.push(diag);
            }
        }
        graph_inputs.push((
            krate.clone(),
            rel,
            scanned.symbols,
            scanned.panic_lines,
            scanned.p2_allowed_lines,
        ));
    }

    // ---- P2: workspace call graph + panic-reachability ratchet ----
    let entries: Vec<callgraph::FileEntry> = graph_inputs
        .iter()
        .map(|(krate, rel, syms, panics, allowed)| callgraph::FileEntry {
            krate,
            path: rel,
            symbols: syms,
            panic_lines: panics,
            p2_allowed_lines: allowed,
        })
        .collect();
    let reach = callgraph::analyze(&entries);
    let committed = callgraph::load_reach(&cfg.reach_path);
    if cfg.write_baseline {
        callgraph::save_reach(&cfg.reach_path, &reach.public_reach)?;
    }
    let reach_effective: &BTreeSet<String> = if cfg.write_baseline {
        &reach.public_reach
    } else {
        &committed
    };
    let p2_violations: Vec<(String, String, usize)> = reach
        .public_reach
        .difference(reach_effective)
        .map(|e| {
            let (path, line) = reach
                .locations
                .get(e)
                .cloned()
                .unwrap_or_else(|| (String::new(), 0));
            (e.clone(), path, line)
        })
        .collect();
    let p2_committed = committed.len();

    let previous = baseline::load(&cfg.baseline_path)?;
    let p1_baseline: usize = previous.values().sum();
    let current_counts: BTreeMap<String, usize> = p1_by_file
        .iter()
        .map(|(f, v)| (f.clone(), v.len()))
        .collect();
    let p1_current: usize = current_counts.values().sum();

    let mut baseline_written = false;
    if cfg.write_baseline {
        baseline::save(&cfg.baseline_path, &current_counts)?;
        baseline_written = true;
    }

    let effective: &BTreeMap<String, usize> = if cfg.write_baseline {
        &current_counts
    } else {
        &previous
    };

    let mut baselined: Vec<Diagnostic> = Vec::new();
    let mut baseline_violations: Vec<BaselineViolation> = Vec::new();
    for (file, mut diags) in p1_by_file {
        let allowed = effective.get(&file).copied().unwrap_or(0);
        if diags.len() <= allowed {
            for d in &mut diags {
                d.baselined = true;
            }
            baselined.append(&mut diags);
        } else {
            baseline_violations.push(BaselineViolation {
                path: file,
                current: diags.len(),
                allowed,
            });
            active.append(&mut diags);
        }
    }

    // Resolve --deny/--warn overrides, in CLI order.
    for d in &mut active {
        for (selector, deny) in &cfg.class_overrides {
            let applies = match selector {
                None => true,
                Some(s) => s == d.rule.family() || s == d.rule.code(),
            };
            if applies {
                d.deny = *deny;
            }
        }
    }

    active.sort();
    baselined.sort();
    Ok(Report {
        files_scanned,
        diagnostics: active,
        baselined,
        baseline_violations,
        p1_current,
        p1_baseline,
        p2_entries: reach.public_reach,
        p2_committed,
        p2_violations,
        baseline_written,
    })
}
