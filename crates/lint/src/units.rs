//! **U1** — unit/dimension hygiene for physical quantities.
//!
//! Every SINR quantity in the workspace crosses unit domains (dBm↔mW via the
//! radio conversion helpers, meters vs meters², slots vs seconds), and the
//! naming convention encodes the unit as an identifier suffix. This pass
//! mechanizes that convention:
//!
//! * `U1.mix` — cross-unit arithmetic/comparison: `a_db + b_mw`,
//!   `x_m <= y_m2`. Units are grouped into *classes* so legitimate log-domain
//!   algebra (`dBm ± dB`) is not flagged, while log-vs-linear and
//!   length-vs-area mixes are.
//! * `U1.bind` — cross-unit `let`/`const` binding or assignment where the
//!   initializer is a single unit-bearing term: `let range_m = area_m2;`.
//!   Exact-unit comparison (a `_db` name bound to a `_dbm` value is
//!   dishonest even though both are log-domain).
//! * `U1.conv` — suffix-dishonest conversion calls: `dbm_to_mw(-loss_db)`
//!   converts a dB ratio with the absolute-power helper. The honest helpers
//!   are `db_to_linear`/`linear_to_db`.
//!
//! Inference is deliberately conservative: a violation is reported only when
//! *both* operands carry a known unit (multi-term initializers, calls with
//! unknown return units and product/quotient operands — which legitimately
//! change dimension — all infer to "unknown" and stay silent).

use crate::scan::{ident_at, punct_at, Ctx, Diagnostic, RuleCode, Tok, Token};
use crate::symbols::FileSymbols;

/// The units the identifier-suffix convention encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// `_db` — relative power ratio in decibels.
    Db,
    /// `_dbm` — absolute power in dB-milliwatts.
    Dbm,
    /// `_mw` — absolute power in milliwatts (linear domain).
    Mw,
    /// `_m` — length in meters.
    Meters,
    /// `_m2` / `_sq_m2` — area / squared length in meters².
    MetersSq,
    /// `_slots` — time in schedule slots.
    Slots,
    /// `_secs` — time in seconds.
    Secs,
    /// `_pct` — dimensionless percentage.
    Pct,
}

/// Compatibility classes for additive/comparative operations. `dBm ± dB` is
/// legitimate log-domain algebra (absolute ± relative), so [`Unit::Db`] and
/// [`Unit::Dbm`] share a class; everything else is its own class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitClass {
    LogPower,
    LinearPower,
    Length,
    Area,
    Slots,
    Seconds,
    Fraction,
}

impl Unit {
    pub fn class(self) -> UnitClass {
        match self {
            Unit::Db | Unit::Dbm => UnitClass::LogPower,
            Unit::Mw => UnitClass::LinearPower,
            Unit::Meters => UnitClass::Length,
            Unit::MetersSq => UnitClass::Area,
            Unit::Slots => UnitClass::Slots,
            Unit::Secs => UnitClass::Seconds,
            Unit::Pct => UnitClass::Fraction,
        }
    }

    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Db => "_db",
            Unit::Dbm => "_dbm",
            Unit::Mw => "_mw",
            Unit::Meters => "_m",
            Unit::MetersSq => "_m2",
            Unit::Slots => "_slots",
            Unit::Secs => "_secs",
            Unit::Pct => "_pct",
        }
    }
}

/// Infer a unit from an identifier's trailing `_`-separated segment
/// (case-insensitive so `LIMIT_DB` consts participate). Bare one-letter
/// names (`m`) never infer — they are overwhelmingly loop variables.
pub fn suffix_unit(name: &str) -> Option<Unit> {
    let seg = match name.rfind('_') {
        Some(pos) if pos + 1 < name.len() => &name[pos + 1..],
        Some(_) => return None,
        None if name.len() >= 2 => name,
        None => return None,
    };
    let seg = seg.to_ascii_lowercase();
    match seg.as_str() {
        "db" => Some(Unit::Db),
        "dbm" => Some(Unit::Dbm),
        "mw" => Some(Unit::Mw),
        "m" => Some(Unit::Meters),
        "m2" => Some(Unit::MetersSq),
        "slots" => Some(Unit::Slots),
        "secs" => Some(Unit::Secs),
        "pct" => Some(Unit::Pct),
        _ => None,
    }
}

/// The known conversion helpers: `(name, input unit, output unit)`. `None`
/// stands for a dimensionless linear ratio.
const CONVERSIONS: &[(&str, Option<Unit>, Option<Unit>)] = &[
    ("dbm_to_mw", Some(Unit::Dbm), Some(Unit::Mw)),
    ("mw_to_dbm", Some(Unit::Mw), Some(Unit::Dbm)),
    ("db_to_linear", Some(Unit::Db), None),
    ("linear_to_db", None, Some(Unit::Db)),
];

fn conversion(name: &str) -> Option<(Option<Unit>, Option<Unit>)> {
    CONVERSIONS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, i, o)| (i, o))
}

/// Token index just past the `)` matching the `(` at `open`.
fn close_of(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if punct_at(toks, i, '(') {
            depth += 1;
        } else if punct_at(toks, i, ')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Infer the unit of the single term spanning `[start, end)`, or `None`
/// when the range is empty, multi-term, or ends in an unknown call.
///
/// A term is: optional unary `-`/`&`/`*`, then either a parenthesized term,
/// or a path/field chain `a::b.c` possibly ending in a call. Conversion
/// calls yield their output unit; other calls yield unknown. A trailing
/// `as <ty>` cast is transparent. Anything left over makes the term
/// multi-term (unknown) — `r_m * r_m` legitimately *is* an area.
pub(crate) fn term_unit(toks: &[Token], start: usize, end: usize) -> Option<Unit> {
    let mut i = start;
    while i < end && (punct_at(toks, i, '-') || punct_at(toks, i, '&') || punct_at(toks, i, '*')) {
        i += 1;
    }
    if i >= end {
        return None;
    }
    // Fully parenthesized term: `(x_m2)`.
    if punct_at(toks, i, '(') {
        let close = close_of(toks, i);
        if close == end {
            return term_unit(toks, i + 1, close - 1);
        }
        return None;
    }
    let mut last: Option<&str> = None;
    while i < end {
        match ident_at(toks, i) {
            Some(seg) => {
                last = Some(seg);
                // Path / field separators continue the chain.
                if punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') {
                    i += 3;
                    continue;
                }
                if punct_at(toks, i + 1, '.') {
                    i += 2;
                    continue;
                }
                if punct_at(toks, i + 1, '(') {
                    // A call: only conversion helpers have a known output.
                    let (_, output) = conversion(seg)?;
                    let close = close_of(toks, i + 1);
                    return if after_is_terminal(toks, close, end) {
                        output
                    } else {
                        None
                    };
                }
                i += 1;
                break;
            }
            None => return None,
        }
    }
    if !after_is_terminal(toks, i, end) {
        return None;
    }
    last.and_then(suffix_unit)
}

/// Whether the tokens from `i` to `end` are term-terminal: empty, or a
/// transparent `as <ty>` cast.
fn after_is_terminal(toks: &[Token], i: usize, end: usize) -> bool {
    if i >= end {
        return true;
    }
    if ident_at(toks, i) == Some("as") {
        // `as f64` / `as usize` — one type ident.
        return i + 2 >= end && ident_at(toks, i + 1).is_some();
    }
    false
}

/// Walk a path/field chain *backwards* from token `i` (inclusive) and
/// return the unit of its last segment, or `None` when the chain is part
/// of a product/quotient (dimension-changing) or not an identifier.
fn lhs_operand_unit(toks: &[Token], i: usize) -> Option<Unit> {
    let name = ident_at(toks, i)?;
    // Products and quotients legitimately change dimension: if the operand
    // is itself a factor (`.. * y_m < ..`), stay silent.
    let mut j = i as isize - 1;
    // Skip back over the rest of the chain: `a.b`, `a::b`.
    loop {
        if j >= 1 && punct_at(toks, j as usize, '.') && ident_at(toks, j as usize - 1).is_some() {
            j -= 2;
        } else if j >= 2
            && punct_at(toks, j as usize, ':')
            && punct_at(toks, j as usize - 1, ':')
            && ident_at(toks, j as usize - 2).is_some()
        {
            j -= 3;
        } else {
            break;
        }
    }
    if j >= 0 && (punct_at(toks, j as usize, '*') || punct_at(toks, j as usize, '/')) {
        return None;
    }
    suffix_unit(name)
}

/// Unit of the operand starting at token `i` (exclusive of any product that
/// follows — `y_m * y_m` is not a `Meters` operand).
fn rhs_operand_unit(toks: &[Token], i: usize) -> Option<Unit> {
    let mut j = i;
    while punct_at(toks, j, '-') || punct_at(toks, j, '&') {
        j += 1;
    }
    loop {
        let seg = ident_at(toks, j)?;
        if punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, ':') {
            j += 3;
        } else if punct_at(toks, j + 1, '.') && ident_at(toks, j + 2).is_some() {
            j += 2;
        } else {
            if punct_at(toks, j + 1, '(') {
                return None; // ends in a call — unknown value
            }
            if punct_at(toks, j + 1, '*') || punct_at(toks, j + 1, '/') {
                return None; // factor of a product — dimension changes
            }
            return suffix_unit(seg);
        }
    }
}

/// The binary operators U1.mix polices, at token `i`. Returns
/// `(display, rhs_start)`. Multiplicative operators are deliberately
/// excluded — `power_mw * gain` is the model working as intended.
fn mix_operator(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let two = |c: char| punct_at(toks, i + 1, c);
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct('+')) => {
            if two('=') {
                Some(("+=", i + 2))
            } else {
                Some(("+", i + 1))
            }
        }
        Some(Tok::Punct('-')) => {
            if two('>') {
                None // `->` return-type arrow
            } else if two('=') {
                Some(("-=", i + 2))
            } else {
                Some(("-", i + 1))
            }
        }
        Some(Tok::Punct('<')) => {
            if two('<') {
                None // shift
            } else if two('=') {
                Some(("<=", i + 2))
            } else {
                Some(("<", i + 1))
            }
        }
        Some(Tok::Punct('>')) => {
            if punct_at(toks, i.wrapping_sub(1), '-') || two('>') {
                None // `->` or shift
            } else if two('=') {
                Some((">=", i + 2))
            } else {
                Some((">", i + 1))
            }
        }
        Some(Tok::Punct('=')) if two('=') && !punct_at(toks, i.wrapping_sub(1), '=') => {
            Some(("==", i + 2))
        }
        Some(Tok::Punct('!')) if two('=') => Some(("!=", i + 2)),
        _ => None,
    }
}

/// Run the three U1 rules over one tokenized file. Diagnostics are raw —
/// the caller applies `lint:allow` filtering.
pub(crate) fn scan_units(
    path: &str,
    toks: &[Token],
    ctx: &[Ctx],
    syms: &FileSymbols,
    diags: &mut Vec<Diagnostic>,
) {
    let push = |diags: &mut Vec<Diagnostic>, rule: RuleCode, line: usize, message: String| {
        diags.push(Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
            baselined: false,
            deny: rule.default_deny(),
        });
    };

    // ---- U1.mix: cross-class arithmetic/comparison ----
    for i in 0..toks.len() {
        if ctx[i].in_test {
            continue;
        }
        let Some((op, rhs_start)) = mix_operator(toks, i) else {
            continue;
        };
        // Two-char operators are seen twice (`<` then `=`); only act on the
        // first token, where `i - 1` is the left operand.
        if i >= 1
            && mix_operator(toks, i - 1)
                .map(|(_, r)| r > i)
                .unwrap_or(false)
        {
            continue;
        }
        let Some(lu) = lhs_operand_unit(toks, i.wrapping_sub(1)) else {
            continue;
        };
        let Some(ru) = rhs_operand_unit(toks, rhs_start) else {
            continue;
        };
        if lu.class() != ru.class() {
            let lname = ident_at(toks, i - 1).unwrap_or("?");
            push(
                diags,
                RuleCode::U1Mix,
                toks[i].line,
                format!(
                    "`{lname} {op} ..{}` mixes units {} and {}: convert explicitly before \
                     combining",
                    ru.suffix(),
                    lu.suffix(),
                    ru.suffix(),
                ),
            );
        }
    }

    // ---- U1.bind: cross-unit let/const bindings ----
    for b in &syms.bindings {
        if b.in_test {
            continue;
        }
        let Some(lu) = suffix_unit(&b.name) else {
            continue;
        };
        let Some(ru) = term_unit(toks, b.init.0, b.init.1) else {
            continue;
        };
        if lu != ru {
            push(
                diags,
                RuleCode::U1Bind,
                b.line,
                format!(
                    "`{}` ({}) is bound to a {} value; rename the binding or convert the \
                     value",
                    b.name,
                    lu.suffix(),
                    ru.suffix(),
                ),
            );
        }
    }

    // ---- U1.bind: cross-unit plain assignments (`x_m = y_m2;`) ----
    for i in 1..toks.len() {
        if ctx[i].in_test {
            continue;
        }
        if !punct_at(toks, i, '=') || punct_at(toks, i + 1, '=') {
            continue;
        }
        // Exclude compound/comparison forms and `let` (handled above).
        let Some(name) = ident_at(toks, i - 1) else {
            continue;
        };
        if matches!(
            ident_at(toks, i.wrapping_sub(2)),
            Some("let" | "mut" | "const" | "static")
        ) {
            continue;
        }
        let Some(lu) = suffix_unit(name) else {
            continue;
        };
        // Statement end at depth 0.
        let mut depth = 0i32;
        let mut end = i + 1;
        while end < toks.len() {
            match &toks[end].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    if depth == 0 {
                        break; // `Struct { x_m: .. }`-style contexts end here
                    }
                    depth -= 1;
                }
                Tok::Punct(';') | Tok::Punct(',') if depth <= 0 => break,
                _ => {}
            }
            end += 1;
        }
        let Some(ru) = term_unit(toks, i + 1, end) else {
            continue;
        };
        if lu != ru {
            push(
                diags,
                RuleCode::U1Bind,
                toks[i].line,
                format!(
                    "`{name}` ({}) is assigned a {} value; rename the target or convert the \
                     value",
                    lu.suffix(),
                    ru.suffix(),
                ),
            );
        }
    }

    // ---- U1.conv: suffix-dishonest conversion calls ----
    for c in &syms.calls {
        if c.in_test {
            continue;
        }
        let Some((expected, _)) = conversion(&c.callee) else {
            continue;
        };
        // First argument: from past `(` to the matching `)` or a top-level `,`.
        let close = close_of(toks, c.args_open);
        let mut end = close.saturating_sub(1);
        let mut depth = 0i32;
        let mut j = c.args_open + 1;
        while j < close {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct(',') if depth <= 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arg) = term_unit(toks, c.args_open + 1, end) else {
            continue;
        };
        if expected != Some(arg) {
            let hint = match (c.callee.as_str(), arg) {
                ("dbm_to_mw", Unit::Db) => "; use `db_to_linear` for dB ratios",
                ("mw_to_dbm", Unit::Db) | ("mw_to_dbm", Unit::Dbm) => {
                    "; the argument is already log-domain"
                }
                ("db_to_linear", Unit::Dbm) => "; use `dbm_to_mw` for absolute powers",
                ("linear_to_db", Unit::Mw) => "; use `mw_to_dbm` for absolute powers",
                _ => "",
            };
            push(
                diags,
                RuleCode::U1Conv,
                c.line,
                format!(
                    "`{}` expects {} but the argument is {}{hint}",
                    c.callee,
                    expected.map(|u| u.suffix()).unwrap_or("a linear ratio"),
                    arg.suffix(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_source, ScanPolicy};

    const POLICY: ScanPolicy = ScanPolicy {
        hash_iter: false,
        wall_clock: false,
        float_eq: false,
        units: true,
        obs_sink: false,
    };

    fn codes(src: &str) -> Vec<&'static str> {
        scan_source("crates/x/src/lib.rs", src, POLICY)
            .into_iter()
            .map(|d| d.rule.code())
            .collect()
    }

    // ---- U1.mix ----

    #[test]
    fn mix_flags_log_vs_linear_and_length_vs_area() {
        let src = r#"
fn f(a_db: f64, b_mw: f64, x_m: f64, y_m2: f64) -> (f64, bool) {
    (a_db + b_mw, x_m <= y_m2)
}
"#;
        assert_eq!(codes(src), vec!["U1.mix", "U1.mix"]);
    }

    #[test]
    fn mix_allows_log_domain_budget_algebra() {
        // dBm ± dB is the link budget working as intended.
        let src = r#"
fn budget(tx_dbm: f64, loss_db: f64, margin_db: f64) -> f64 {
    tx_dbm - loss_db - margin_db
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn mix_ignores_products_and_unknown_operands() {
        // `*`/`/` legitimately change dimension; `r_m * r_m` IS an area.
        let src = r#"
fn f(cutoff_sq_m2: f64, r_m: f64, gain: f64, p_mw: f64) -> (bool, f64) {
    (cutoff_sq_m2 <= r_m * r_m, p_mw + gain)
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn mix_follows_field_chains() {
        let src = r#"
fn f(cfg: &Config, x_mw: f64) -> f64 {
    x_mw + cfg.noise_floor_dbm
}
"#;
        assert_eq!(codes(src), vec!["U1.mix"]);
    }

    #[test]
    fn mix_respects_allow_and_test_regions() {
        let src = r#"
fn f(a_db: f64, b_mw: f64) -> f64 {
    a_db + b_mw // lint:allow(U1.mix, reason = "fixture: intentional mix")
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(a_db: f64, b_mw: f64) {
        let _ = a_db + b_mw;
    }
}
"#;
        assert!(codes(src).is_empty());
    }

    // ---- U1.bind ----

    #[test]
    fn bind_flags_single_term_cross_unit_initializers() {
        let src = r#"
fn f(area_m2: f64) {
    let range_m = area_m2;
    let _ = range_m;
}
"#;
        assert_eq!(codes(src), vec!["U1.bind"]);
    }

    #[test]
    fn bind_is_exact_about_db_vs_dbm() {
        let src = r#"
fn f(tx_dbm: f64) {
    let headroom_db = tx_dbm;
    let _ = headroom_db;
}
"#;
        assert_eq!(codes(src), vec!["U1.bind"]);
    }

    #[test]
    fn bind_skips_multi_term_and_matching_units() {
        let src = r#"
fn f(cutoff_m: f64, base_mw: f64, extra_mw: f64) {
    let cutoff_sq_m2 = cutoff_m * cutoff_m;
    let total_mw = base_mw + extra_mw;
    let also_mw = total_mw;
    let _ = (cutoff_sq_m2, also_mw);
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn bind_sees_conversion_call_outputs() {
        let src = r#"
fn f(p_dbm: f64) {
    let power_db = dbm_to_mw(p_dbm);
    let power_mw = dbm_to_mw(p_dbm);
    let _ = (power_db, power_mw);
}
"#;
        assert_eq!(codes(src), vec!["U1.bind"]);
    }

    #[test]
    fn bind_flags_plain_assignments_and_casts() {
        let src = r#"
fn f(slots: u32, horizon_secs: f64) {
    let mut epoch_slots = 0u32;
    epoch_slots = horizon_secs as u32;
    let _ = (slots, epoch_slots);
}
"#;
        assert_eq!(codes(src), vec!["U1.bind"]);
    }

    #[test]
    fn bind_respects_allow_and_test_regions() {
        let src = r#"
fn f(area_m2: f64) {
    // lint:allow(U1.bind, reason = "fixture: legacy name kept for ABI")
    let range_m = area_m2;
    let _ = range_m;
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(area_m2: f64) {
        let range_m = area_m2;
        let _ = range_m;
    }
}
"#;
        assert!(codes(src).is_empty());
    }

    // ---- U1.conv ----

    #[test]
    fn conv_flags_db_argument_to_dbm_converter() {
        let src = r#"
fn f(loss_db: f64) -> f64 {
    dbm_to_mw(-loss_db)
}
"#;
        assert_eq!(codes(src), vec!["U1.conv"]);
    }

    #[test]
    fn conv_accepts_honest_arguments() {
        let src = r#"
fn f(p_dbm: f64, p_mw: f64, loss_db: f64, sinr: f64) -> (f64, f64, f64, f64) {
    (dbm_to_mw(p_dbm), mw_to_dbm(p_mw), db_to_linear(-loss_db), linear_to_db(sinr))
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn conv_flags_linear_to_db_on_absolute_power() {
        let src = r#"
fn f(p_mw: f64) -> f64 {
    linear_to_db(p_mw)
}
"#;
        assert_eq!(codes(src), vec!["U1.conv"]);
    }

    #[test]
    fn conv_stays_silent_on_unknown_arguments() {
        let src = r#"
fn f(x: f64, ys: &[f64]) -> f64 {
    dbm_to_mw(x) + dbm_to_mw(ys[0]) + dbm_to_mw(x.max(0.0))
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn conv_respects_allow_and_test_regions() {
        let src = r#"
fn f(loss_db: f64) -> f64 {
    dbm_to_mw(-loss_db) // lint:allow(U1.conv, reason = "fixture: pre-helper code")
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(loss_db: f64) {
        let _ = dbm_to_mw(-loss_db);
    }
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn suffixes_map_to_units() {
        assert_eq!(suffix_unit("noise_floor_dbm"), Some(Unit::Dbm));
        assert_eq!(suffix_unit("sigma_db"), Some(Unit::Db));
        assert_eq!(suffix_unit("unit_mw"), Some(Unit::Mw));
        assert_eq!(suffix_unit("cutoff_m"), Some(Unit::Meters));
        assert_eq!(suffix_unit("cutoff_sq_m2"), Some(Unit::MetersSq));
        assert_eq!(suffix_unit("epoch_slots"), Some(Unit::Slots));
        assert_eq!(suffix_unit("horizon_secs"), Some(Unit::Secs));
        assert_eq!(suffix_unit("delivery_pct"), Some(Unit::Pct));
        assert_eq!(suffix_unit("LIMIT_DB"), Some(Unit::Db), "consts too");
        assert_eq!(suffix_unit("dbm"), Some(Unit::Dbm), "bare multi-char name");
        assert_eq!(suffix_unit("m"), None, "bare `m` is a loop variable");
        assert_eq!(suffix_unit("count"), None);
        assert_eq!(suffix_unit("trailing_"), None);
    }

    #[test]
    fn log_domain_units_share_a_class() {
        assert_eq!(Unit::Db.class(), Unit::Dbm.class());
        assert_ne!(Unit::Db.class(), Unit::Mw.class());
        assert_ne!(Unit::Meters.class(), Unit::MetersSq.class());
        assert_ne!(Unit::Slots.class(), Unit::Secs.class());
    }
}
