//! Per-file symbol indexer built on the scrubbing lexer.
//!
//! One pass over the token stream recovers the item structure the semantic
//! rules need: function signatures (name, visibility, params, body span,
//! enclosing `impl` type), `let`/`const` bindings with their initializer
//! token ranges, struct fields, and call sites attributed to the enclosing
//! function. Still purely lexical — no `syn`, no rustc — so it tolerates
//! code that does not compile and runs in the offline container.
//!
//! Consumers: the **U1** unit-hygiene rules (`crate::units`) read bindings
//! and conversion call sites; the **P2** panic-reachability pass
//! (`crate::callgraph`) reads functions and call sites.

use crate::scan::{contexts, ident_at, is_loop_for, punct_at, tokenize, Tok, Token};

/// Item visibility, as far as a lexical scan can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)` — not visible cross-crate.
    Crate,
    /// Bare `pub` — part of the crate's public API surface.
    Public,
}

/// One `fn` item (free function, method, or trait signature).
#[derive(Debug, Clone)]
pub struct FnSymbol {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub visibility: Visibility,
    /// Enclosing `impl` type name, when the fn is a method.
    pub owner: Option<String>,
    /// True when declared inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Parameter names (excluding `self`), with their lines.
    pub params: Vec<(String, usize)>,
    /// 1-based line span of the body braces; `None` for trait signatures.
    pub body_lines: Option<(usize, usize)>,
}

/// One `let` or `const` binding of a plain identifier.
#[derive(Debug, Clone)]
pub struct Binding {
    pub name: String,
    pub line: usize,
    /// Token range (exclusive end) of the initializer expression.
    pub init: (usize, usize),
    pub in_test: bool,
}

/// One struct field declaration.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    pub line: usize,
    /// The struct the field belongs to.
    pub owner: String,
}

/// One call site: `callee(..)`, `path::callee(..)` or `.callee(..)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Last path segment of the callee.
    pub callee: String,
    /// The path segment before the callee (`Type` in `Type::callee(..)`).
    pub qualifier: Option<String>,
    /// True for `.callee(..)` method-call syntax.
    pub method: bool,
    pub line: usize,
    /// Index into [`FileSymbols::functions`] of the enclosing fn, if any.
    pub caller: Option<usize>,
    /// Token index of the opening `(` — the argument list starts after it.
    pub args_open: usize,
    pub in_test: bool,
}

/// Everything the indexer recovered from one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    pub functions: Vec<FnSymbol>,
    pub bindings: Vec<Binding>,
    pub fields: Vec<FieldDecl>,
    pub calls: Vec<CallSite>,
}

/// Keywords that look like call syntax when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "in", "as", "let", "else", "loop", "move",
    "break", "continue", "where", "impl", "dyn", "pub", "crate", "super", "self", "Self", "mut",
    "ref", "use", "mod", "const", "static", "unsafe", "async", "await", "yield",
];

#[derive(Debug, Clone, PartialEq)]
enum Frame {
    /// `impl` block with the implemented type's name.
    Impl(Option<String>),
    /// Function body, by index into `functions`.
    Fn(usize),
    /// `struct` body with the struct's name.
    Struct(String),
    Other,
}

/// Scan back from the token before `fn` to classify its visibility.
fn visibility_before(toks: &[Token], fn_idx: usize) -> Visibility {
    let mut j = fn_idx as isize - 1;
    // Skip qualifiers between `pub` and `fn`.
    while j >= 0 {
        match ident_at(toks, j as usize) {
            Some("const" | "unsafe" | "async" | "extern") => j -= 1,
            _ => break,
        }
    }
    if j < 0 {
        return Visibility::Private;
    }
    if ident_at(toks, j as usize) == Some("pub") {
        return Visibility::Public;
    }
    // `pub(crate)` / `pub(super)` / `pub(in path)` end in `)`.
    if punct_at(toks, j as usize, ')') {
        let mut depth = 0i32;
        while j >= 0 {
            if punct_at(toks, j as usize, ')') {
                depth += 1;
            } else if punct_at(toks, j as usize, '(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j -= 1;
        }
        if j >= 1 && ident_at(toks, j as usize - 1) == Some("pub") {
            return Visibility::Crate;
        }
    }
    Visibility::Private
}

/// Token index just past a matching `>` for generics opening at `open`
/// (which must be `<`). Tolerates nested generics.
fn skip_generics(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if punct_at(toks, i, '<') {
            depth += 1;
        } else if punct_at(toks, i, '>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if punct_at(toks, i, '(') || punct_at(toks, i, '{') || punct_at(toks, i, ';') {
            // Malformed or not generics after all; bail where we are.
            return i;
        }
        i += 1;
    }
    i
}

/// Parse the parameter list opening at `open` (a `(`): returns the token
/// index just past the matching `)` plus the named params.
fn parse_params(toks: &[Token], open: usize) -> (usize, Vec<(String, usize)>) {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut i = open;
    let mut seg_start = open + 1;
    let mut end = toks.len();
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    param_from_segment(toks, seg_start, i, &mut params);
                    end = i + 1;
                    break;
                }
            }
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct(',') if depth == 1 && angle <= 0 => {
                param_from_segment(toks, seg_start, i, &mut params);
                seg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    (end, params)
}

/// Extract `name` from one `name: Type` parameter segment (skipping `self`
/// receivers, `mut`, `&` and lifetimes).
fn param_from_segment(toks: &[Token], start: usize, end: usize, out: &mut Vec<(String, usize)>) {
    let mut i = start;
    while i < end {
        match ident_at(toks, i) {
            Some("mut") | Some("_") => i += 1,
            Some("self") => return,
            Some(name) => {
                if punct_at(toks, i + 1, ':') && !punct_at(toks, i + 2, ':') {
                    out.push((name.to_string(), toks[i].line));
                }
                return;
            }
            None => {
                // `&`, `&'a`, lifetimes, pattern puncts.
                if punct_at(toks, i, '&') || punct_at(toks, i, '\'') {
                    i += 1;
                } else {
                    return;
                }
            }
        }
    }
}

/// Find the initializer token range of a `let`/`const` starting at `eq + 1`:
/// up to the terminating `;` at zero bracket depth (skipping bodies of
/// closures/blocks nested in the initializer).
fn init_range(toks: &[Token], eq: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut i = eq + 1;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => return (eq + 1, i),
            _ => {}
        }
        i += 1;
    }
    (eq + 1, i)
}

/// The implemented type name of an `impl` header starting at `impl_idx`:
/// the first ident after a top-level `for` (trait impls), else the first
/// ident after the generics (inherent impls).
fn impl_type_name(toks: &[Token], impl_idx: usize) -> (Option<String>, usize) {
    let mut i = impl_idx + 1;
    if punct_at(toks, i, '<') {
        i = skip_generics(toks, i);
    }
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut angle = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(s) if s == "where" && angle <= 0 => break,
            Tok::Ident(s) if s == "for" && angle <= 0 => {
                // The type being implemented follows; skip `&`/`mut`.
                let mut j = i + 1;
                while punct_at(toks, j, '&') || ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                // Walk a path `a::b::C`, keeping the last segment.
                let mut last = None;
                while let Some(seg) = ident_at(toks, j) {
                    last = Some(seg.to_string());
                    if punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, ':') {
                        j += 3;
                    } else {
                        break;
                    }
                }
                after_for = last;
                i = j;
            }
            Tok::Ident(s) if angle <= 0 && first.is_none() => {
                // Track the last segment of the leading path.
                let mut j = i;
                let mut last = s.clone();
                while punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, ':') {
                    j += 3;
                    if let Some(seg) = ident_at(toks, j) {
                        last = seg.to_string();
                    } else {
                        break;
                    }
                }
                first = Some(last);
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    (after_for.or(first), i)
}

/// Index one scrubbed file already tokenized by the scanner.
pub(crate) fn index_tokens(toks: &[Token]) -> FileSymbols {
    let ctx = contexts(toks);
    let mut syms = FileSymbols::default();
    // Parallel stack to the brace structure; pushed at `{`.
    let mut stack: Vec<Frame> = Vec::new();
    // Item kind waiting for its `{`.
    let mut pending: Option<Frame> = None;
    let mut pending_paren = 0i32;

    let mut i = 0usize;
    while i < toks.len() {
        // Attributes (`#[cfg(test)]`, `#[derive(..)]`) look like calls;
        // skip them wholesale, as the context pass does.
        if punct_at(toks, i, '#') {
            let mut j = i + 1;
            if punct_at(toks, j, '!') {
                j += 1;
            }
            if punct_at(toks, j, '[') {
                let mut depth = 0i32;
                while j < toks.len() {
                    if punct_at(toks, j, '[') {
                        depth += 1;
                    } else if punct_at(toks, j, ']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        match &toks[i].tok {
            Tok::Ident(kw) if kw == "impl" => {
                let (name, next) = impl_type_name(toks, i);
                pending = Some(Frame::Impl(name));
                pending_paren = 0;
                i = next;
                continue;
            }
            Tok::Ident(kw) if kw == "struct" || kw == "enum" || kw == "union" => {
                if let Some(name) = ident_at(toks, i + 1) {
                    if kw == "struct" {
                        pending = Some(Frame::Struct(name.to_string()));
                    } else {
                        pending = Some(Frame::Other);
                    }
                    pending_paren = 0;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let line = toks[i].line;
                let visibility = visibility_before(toks, i);
                let owner = stack.iter().rev().find_map(|f| match f {
                    Frame::Impl(n) => n.clone(),
                    _ => None,
                });
                let mut j = i + 2;
                if punct_at(toks, j, '<') {
                    j = skip_generics(toks, j);
                }
                let (after_params, params) = if punct_at(toks, j, '(') {
                    parse_params(toks, j)
                } else {
                    (j, Vec::new())
                };
                syms.functions.push(FnSymbol {
                    name: name.to_string(),
                    line,
                    visibility,
                    owner,
                    in_test: ctx.get(i).map(|c| c.in_test).unwrap_or(false),
                    params,
                    body_lines: None,
                });
                pending = Some(Frame::Fn(syms.functions.len() - 1));
                pending_paren = 0;
                i = after_params;
                continue;
            }
            Tok::Ident(kw) if kw == "let" || kw == "const" || kw == "static" => {
                // `let [mut] name [: Type] = init ;` — plain identifier
                // patterns only (destructuring has no single unit).
                let mut j = i + 1;
                while matches!(ident_at(toks, j), Some("mut")) {
                    j += 1;
                }
                if let Some(name) = ident_at(toks, j) {
                    let name_line = toks[j].line;
                    let mut k = j + 1;
                    if punct_at(toks, k, ':') && !punct_at(toks, k + 1, ':') {
                        // Skip the type ascription up to `=` or `;`.
                        let mut angle = 0i32;
                        let mut depth = 0i32;
                        k += 1;
                        while k < toks.len() {
                            match &toks[k].tok {
                                Tok::Punct('<') => angle += 1,
                                Tok::Punct('>') => angle -= 1,
                                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                                Tok::Punct('=') if angle <= 0 && depth <= 0 => break,
                                Tok::Punct(';') | Tok::Punct('{') if angle <= 0 && depth <= 0 => {
                                    break
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    // Plain `=` only; `==` is a comparison in `if let`-less code.
                    if punct_at(toks, k, '=') && !punct_at(toks, k + 1, '=') {
                        // `let .. = .. else { .. }` bindings still record the
                        // range up to `;`; the `else` arm is part of the init
                        // and defeats single-term unit inference, harmlessly.
                        let init = init_range(toks, k);
                        syms.bindings.push(Binding {
                            name: name.to_string(),
                            line: name_line,
                            init,
                            in_test: ctx.get(j).map(|c| c.in_test).unwrap_or(false),
                        });
                    }
                }
            }
            Tok::Ident(name) => {
                // Call sites: `name(..)`, `path::name(..)`, `.name(..)`.
                if punct_at(toks, i + 1, '(') && !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                    // Macro invocations (`name!(`) were excluded by `!`
                    // sitting between; `name !` + `(` never matches here.
                    let method = punct_at(toks, i.wrapping_sub(1), '.');
                    let qualifier = if !method
                        && i >= 3
                        && punct_at(toks, i - 1, ':')
                        && punct_at(toks, i - 2, ':')
                    {
                        ident_at(toks, i - 3).map(|s| s.to_string())
                    } else {
                        None
                    };
                    // Skip declarations: `fn name(` was consumed above.
                    let caller = stack.iter().rev().find_map(|f| match f {
                        Frame::Fn(fi) => Some(*fi),
                        _ => None,
                    });
                    syms.calls.push(CallSite {
                        callee: name.clone(),
                        qualifier,
                        method,
                        line: toks[i].line,
                        caller,
                        args_open: i + 1,
                        in_test: ctx.get(i).map(|c| c.in_test).unwrap_or(false),
                    });
                }
                // Struct fields: `name: Type,` directly inside a struct body.
                if let Some(Frame::Struct(owner)) = stack.last() {
                    if punct_at(toks, i + 1, ':')
                        && !punct_at(toks, i + 2, ':')
                        && !punct_at(toks, i.wrapping_sub(1), ':')
                    {
                        syms.fields.push(FieldDecl {
                            name: name.clone(),
                            line: toks[i].line,
                            owner: owner.clone(),
                        });
                    }
                }
                // Loop/conditional headers may carry parens before `{`.
                if (name == "while" || name == "loop" || (name == "for" && is_loop_for(toks, i)))
                    && pending.is_none()
                {
                    pending = Some(Frame::Other);
                    pending_paren = 0;
                }
            }
            Tok::Punct('(') => pending_paren += 1,
            Tok::Punct(')') => pending_paren -= 1,
            Tok::Punct(';') if pending_paren <= 0 => {
                pending = None;
            }
            Tok::Punct('{') => {
                let frame = if pending_paren <= 0 {
                    pending.take().unwrap_or(Frame::Other)
                } else {
                    Frame::Other
                };
                if let Frame::Fn(fi) = frame {
                    syms.functions[fi].body_lines = Some((toks[i].line, toks[i].line));
                }
                stack.push(frame);
            }
            Tok::Punct('}') => {
                if let Some(Frame::Fn(fi)) = stack.pop() {
                    if let Some((start, _)) = syms.functions[fi].body_lines {
                        syms.functions[fi].body_lines = Some((start, toks[i].line));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    syms
}

/// Convenience entry: scrub + tokenize + index one source file.
pub fn index_source(src: &str) -> FileSymbols {
    let scrubbed = crate::lexer::scrub(src);
    let toks = tokenize(&scrubbed.text);
    index_tokens(&toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_with_visibility_owner_and_params() {
        let src = r#"
pub fn free_fn(cutoff_m: f64, count: usize) -> f64 { cutoff_m }
pub(crate) fn crate_fn() {}
fn private_fn() {}
pub struct Thing { pub cutoff_sq_m2: f64, count: usize }
impl Thing {
    pub fn method(&self, x_db: f64) -> f64 { self.cutoff_sq_m2 + x_db }
    fn helper() {}
}
impl std::fmt::Display for Thing {
    fn fmt(&self, f: &mut Formatter) -> Result { Ok(()) }
}
"#;
        let s = index_source(src);
        let names: Vec<&str> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "free_fn",
                "crate_fn",
                "private_fn",
                "method",
                "helper",
                "fmt"
            ]
        );
        assert_eq!(s.functions[0].visibility, Visibility::Public);
        assert_eq!(s.functions[1].visibility, Visibility::Crate);
        assert_eq!(s.functions[2].visibility, Visibility::Private);
        assert_eq!(
            s.functions[0]
                .params
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["cutoff_m", "count"]
        );
        assert_eq!(s.functions[3].owner.as_deref(), Some("Thing"));
        assert_eq!(s.functions[3].params.len(), 1, "self receiver skipped");
        assert_eq!(s.functions[5].owner.as_deref(), Some("Thing"));
        let fields: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, vec!["cutoff_sq_m2", "count"]);
        assert_eq!(s.fields[0].owner, "Thing");
    }

    #[test]
    fn body_spans_cover_the_braces() {
        let src = "fn f() {\n    g();\n    h();\n}\nfn g() {}\n";
        let s = index_source(src);
        assert_eq!(s.functions[0].body_lines, Some((1, 4)));
        assert_eq!(s.functions[1].body_lines, Some((5, 5)));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let src = "trait T { fn probe(&self) -> bool; fn with_default(&self) -> bool { true } }";
        let s = index_source(src);
        assert_eq!(s.functions[0].body_lines, None);
        assert!(s.functions[1].body_lines.is_some());
    }

    #[test]
    fn calls_are_attributed_to_the_enclosing_fn() {
        let src = r#"
fn outer() {
    helper(1);
    Type::assoc(2);
    value.method(3);
}
fn standalone() { nested::path::deep(4); }
"#;
        let s = index_source(src);
        assert_eq!(s.calls.len(), 4);
        assert_eq!(s.calls[0].callee, "helper");
        assert!(!s.calls[0].method && s.calls[0].qualifier.is_none());
        assert_eq!(s.calls[0].caller, Some(0));
        assert_eq!(s.calls[1].callee, "assoc");
        assert_eq!(s.calls[1].qualifier.as_deref(), Some("Type"));
        assert_eq!(s.calls[2].callee, "method");
        assert!(s.calls[2].method);
        assert_eq!(s.calls[3].callee, "deep");
        assert_eq!(s.calls[3].qualifier.as_deref(), Some("path"));
        assert_eq!(s.calls[3].caller, Some(1));
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let src = r#"
fn f(x: u32) -> u32 {
    if (x > 1) { return (x); }
    match (x) { _ => vec![x] }
}
"#;
        let s = index_source(src);
        assert!(s.calls.is_empty(), "{:?}", s.calls);
    }

    #[test]
    fn let_and_const_bindings_record_initializer_ranges() {
        let src = r#"
const LIMIT_DB: f64 = 10.0;
fn f() {
    let cutoff_m = range_m;
    let mut acc: f64 = base_mw + extra_mw;
    let (a, b) = pair();
}
"#;
        let s = index_source(src);
        let names: Vec<&str> = s.bindings.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["LIMIT_DB", "cutoff_m", "acc"]);
        for b in &s.bindings {
            assert!(b.init.0 < b.init.1);
        }
    }

    #[test]
    fn test_region_symbols_are_marked() {
        let src = r#"
fn lib_fn() { helper(); }
#[cfg(test)]
mod tests {
    fn test_helper() { other(); }
}
"#;
        let s = index_source(src);
        assert!(!s.functions[0].in_test);
        assert!(s.functions[1].in_test);
        assert!(!s.calls[0].in_test);
        assert!(s.calls[1].in_test);
    }

    #[test]
    fn impl_type_resolves_through_traits_generics_and_paths() {
        let src = r#"
impl<T: Clone> Container<T> {
    fn a(&self) {}
}
impl crate::model::SlotFeasibility for ExactPhysical {
    fn b(&self) {}
}
"#;
        let s = index_source(src);
        assert_eq!(s.functions[0].owner.as_deref(), Some("Container"));
        assert_eq!(s.functions[1].owner.as_deref(), Some("ExactPhysical"));
    }
}
