//! Token-level rule scanner for one source file.
//!
//! Operates on [`crate::lexer::scrub`]bed text: tokenizes it, computes a
//! per-token context (lexical loop depth, `#[cfg(test)]`/`#[test]` region),
//! and matches the rule patterns. Allow directives are applied here; the
//! P1 baseline ratchet is applied by the caller (it is a per-file count).

use crate::lexer::{is_ident_char, scrub, AllowDirective};
use std::collections::BTreeSet;

/// Every rule the scanner knows, by stable code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleCode {
    /// Iteration over a `HashMap`/`HashSet` in deterministic library code.
    D1Iter,
    /// `Instant::now` / `SystemTime` / `thread_rng` outside bench surfaces.
    D1Clock,
    /// `unwrap`/`expect`/`panic!`-family in non-test library code.
    P1Panic,
    /// `.slots()` / `schedule_per_unit` / `FromScratch` outside tests.
    H1Hot,
    /// Ledger/accumulator construction inside a loop body.
    H1Alloc,
    /// `partial_cmp(..).unwrap()` — NaN panics; use `total_cmp`.
    F1Cmp,
    /// `==`/`!=` against a float literal in verdict code.
    F1Eq,
    /// Cross-unit arithmetic/comparison (`a_db + b_mw`).
    U1Mix,
    /// Cross-unit binding/assignment (`let range_m = area_m2`).
    U1Bind,
    /// Suffix-dishonest conversion call (`dbm_to_mw(-loss_db)`).
    U1Conv,
    /// Allocation/formatting inside a `scream_obs` emission argument list.
    O1Sink,
    /// Public API transitively reaches a panic site (ratchet growth).
    P2Reach,
    /// Malformed or unknown `lint:allow` directive.
    L1Allow,
    /// Well-formed `lint:allow` that suppresses nothing.
    L1Unused,
}

impl RuleCode {
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::D1Iter => "D1.iter",
            RuleCode::D1Clock => "D1.clock",
            RuleCode::P1Panic => "P1.panic",
            RuleCode::H1Hot => "H1.hot",
            RuleCode::H1Alloc => "H1.alloc",
            RuleCode::F1Cmp => "F1.cmp",
            RuleCode::F1Eq => "F1.eq",
            RuleCode::U1Mix => "U1.mix",
            RuleCode::U1Bind => "U1.bind",
            RuleCode::U1Conv => "U1.conv",
            RuleCode::O1Sink => "O1.sink",
            RuleCode::P2Reach => "P2.reach",
            RuleCode::L1Allow => "L1.allow",
            RuleCode::L1Unused => "L1.unused",
        }
    }

    pub fn family(self) -> &'static str {
        match self {
            RuleCode::D1Iter | RuleCode::D1Clock => "D1",
            RuleCode::P1Panic => "P1",
            RuleCode::H1Hot | RuleCode::H1Alloc => "H1",
            RuleCode::F1Cmp | RuleCode::F1Eq => "F1",
            RuleCode::U1Mix | RuleCode::U1Bind | RuleCode::U1Conv => "U1",
            RuleCode::O1Sink => "O1",
            RuleCode::P2Reach => "P2",
            RuleCode::L1Allow | RuleCode::L1Unused => "L1",
        }
    }

    /// Default class: deny unless listed here.
    pub fn default_deny(self) -> bool {
        !matches!(self, RuleCode::F1Eq | RuleCode::L1Unused)
    }

    /// Rule names accepted inside `lint:allow(...)`.
    pub fn is_allowable_name(name: &str) -> bool {
        matches!(
            name,
            "D1" | "P1"
                | "H1"
                | "F1"
                | "U1"
                | "P2"
                | "D1.iter"
                | "D1.clock"
                | "P1.panic"
                | "H1.hot"
                | "H1.alloc"
                | "F1.cmp"
                | "F1.eq"
                | "U1.mix"
                | "U1.bind"
                | "U1.conv"
                | "O1"
                | "O1.sink"
                | "P2.reach"
        )
    }

    /// Whether `name` (a directive rule name) belongs to the P2 family.
    /// P2 allows target the reachability *report*, not token diagnostics,
    /// so they are exempt from `L1.unused`.
    pub fn is_p2_name(name: &str) -> bool {
        name == "P2" || name == "P2.reach"
    }
}

/// One finding, anchored to `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: RuleCode,
    pub message: String,
    /// Set by the caller when the P1 baseline absorbs this finding.
    pub baselined: bool,
    /// Resolved class after `--deny`/`--warn` overrides; starts at default.
    pub deny: bool,
}

/// Which optional rule groups apply to the crate being scanned.
#[derive(Debug, Clone, Copy)]
pub struct ScanPolicy {
    /// D1.iter — hash-order determinism (all deterministic crates).
    pub hash_iter: bool,
    /// D1.clock — wall-clock/thread-rng ban (off for bench surfaces).
    pub wall_clock: bool,
    /// F1.eq — float-literal equality (verdict-producing crates only).
    pub float_eq: bool,
    /// U1 — unit-suffix hygiene (all crates).
    pub units: bool,
    /// O1.sink — obs emission must stay allocation-free (all crates).
    pub obs_sink: bool,
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const ACCUMULATOR_OPENERS: &[&str] = &[
    "open_slot",
    "open_channel_slot",
    "open_slot_ledger",
    "open_channel_slot_ledger",
];

const LEDGER_TYPES: &[&str] = &["SlotLedger", "ChannelSlotLedger"];

/// The `scream-obs` emission surface: free functions whose arguments must
/// stay allocation-free (`&'static str` names, `u64` values) so a disabled
/// sink really is a no-op (O1.sink).
const OBS_EMISSION_FNS: &[&str] = &[
    "counter_add",
    "gauge_set",
    "observe",
    "event",
    "set_slot",
    "set_round",
    "set_epoch",
];

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Punct(char),
    Num { float: bool },
}

#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub(crate) line: usize,
    pub(crate) tok: Tok,
}

pub(crate) fn tokenize(text: &str) -> Vec<Token> {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            toks.push(Token {
                line,
                tok: Tok::Ident(chars[start..i].iter().collect()),
            });
            continue;
        }
        if c.is_ascii_digit() {
            while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
            let mut float = false;
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                float = true;
                i += 1;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                if i < n && (chars[i] == 'e' || chars[i] == 'E') {
                    i += 1;
                    if i < n && (chars[i] == '+' || chars[i] == '-') {
                        i += 1;
                    }
                    while i < n && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            // Type-suffixed literals (`1.5f64`) leave the suffix as a
            // following ident token; harmless for our patterns.
            toks.push(Token {
                line,
                tok: Tok::Num { float },
            });
            continue;
        }
        toks.push(Token {
            line,
            tok: Tok::Punct(c),
        });
        i += 1;
    }
    toks
}

/// Lexical context of each token: loop depth and test-region membership.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Ctx {
    pub(crate) loop_depth: u32,
    pub(crate) in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frame {
    Loop,
    Test,
    Other,
}

pub(crate) fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn float_at(toks: &[Token], i: usize) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Num { float: true }))
}

/// Is the `for` at index `i` a loop header (vs `impl Trait for T`, HRTB
/// `for<'a>`, or `match` arms)?
pub(crate) fn is_loop_for(toks: &[Token], i: usize) -> bool {
    if punct_at(toks, i + 1, '<') {
        return false; // `for<'a>` higher-ranked bound
    }
    if i == 0 {
        return true;
    }
    match &toks[i - 1].tok {
        Tok::Punct(c) => match c {
            '{' | '}' | ';' | ':' | ',' | '(' => true,
            // `=> for ...` (match arm) is a loop; `impl X<T> for Y` is not.
            '>' => i >= 2 && punct_at(toks, i - 2, '='),
            _ => false,
        },
        _ => false,
    }
}

/// One pass of brace/attribute tracking, yielding per-token context.
pub(crate) fn contexts(toks: &[Token]) -> Vec<Ctx> {
    let mut out = Vec::with_capacity(toks.len());
    let mut stack: Vec<Frame> = Vec::new();
    let mut loop_depth = 0u32;
    let mut in_test_depth = 0u32;
    let mut pending_loop = false;
    let mut pending_test = false;
    let mut pending_paren = 0i32;

    let mut i = 0usize;
    while i < toks.len() {
        let cur = Ctx {
            loop_depth,
            in_test: in_test_depth > 0,
        };

        // Attributes: consume `#` `!`? `[` ... `]` as a unit so their
        // contents never interact with loop/test tracking, and detect
        // test-gating attrs (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test,..`).
        if punct_at(toks, i, '#') {
            let mut j = i + 1;
            if punct_at(toks, j, '!') {
                j += 1;
            }
            if punct_at(toks, j, '[') {
                let mut depth = 0i32;
                let mut saw_test = false;
                let mut saw_not = false;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        Tok::Ident(s) => {
                            if s == "test" {
                                saw_test = true;
                            }
                            if s == "not" {
                                saw_not = true;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if saw_test && !saw_not {
                    pending_test = true;
                    pending_paren = 0;
                }
                for _ in i..j {
                    out.push(cur);
                }
                i = j;
                continue;
            }
        }

        out.push(cur);
        match &toks[i].tok {
            Tok::Ident(s) if s == "for" && is_loop_for(toks, i) => {
                pending_loop = true;
                pending_paren = 0;
            }
            Tok::Ident(s) if s == "while" || s == "loop" => {
                pending_loop = true;
                pending_paren = 0;
            }
            Tok::Punct('(') => pending_paren += 1,
            Tok::Punct(')') => pending_paren -= 1,
            Tok::Punct(';') if pending_paren <= 0 => {
                pending_loop = false;
                pending_test = false;
            }
            Tok::Punct('{') => {
                let frame = if pending_paren <= 0 && pending_test {
                    Frame::Test
                } else if pending_paren <= 0 && pending_loop {
                    Frame::Loop
                } else {
                    Frame::Other
                };
                if frame != Frame::Other {
                    pending_loop = false;
                    pending_test = false;
                }
                match frame {
                    Frame::Loop => loop_depth += 1,
                    Frame::Test => in_test_depth += 1,
                    Frame::Other => {}
                }
                stack.push(frame);
            }
            Tok::Punct('}') => match stack.pop() {
                Some(Frame::Loop) => loop_depth = loop_depth.saturating_sub(1),
                Some(Frame::Test) => in_test_depth = in_test_depth.saturating_sub(1),
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

/// Names bound to `HashMap`/`HashSet` values in non-test code: `name: HashMap
/// <..>` (field, param, ascription) and `name = HashMap::new()` forms.
fn collect_hash_idents(toks: &[Token], ctx: &[Ctx]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, c) in ctx.iter().enumerate() {
        let Some(id) = ident_at(toks, i) else {
            continue;
        };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        if c.in_test {
            continue;
        }
        // Step back over a `std::collections::` style path prefix.
        let mut j = i as isize - 1;
        while j >= 1 && punct_at(toks, j as usize, ':') && punct_at(toks, j as usize - 1, ':') {
            j -= 2;
            if j >= 0 && ident_at(toks, j as usize).is_some() {
                j -= 1;
            }
        }
        // Step back over `&`, `&mut` in parameter positions.
        while j >= 0
            && (punct_at(toks, j as usize, '&') || ident_at(toks, j as usize) == Some("mut"))
        {
            j -= 1;
        }
        if j < 1 {
            continue;
        }
        let j = j as usize;
        // `name: HashMap<..>` ascription/field/param, or `name = HashMap::..`
        // assignment (excluding `::` paths and `==`).
        let ascription = punct_at(toks, j, ':') && !punct_at(toks, j - 1, ':');
        let assignment = punct_at(toks, j, '=') && !punct_at(toks, j - 1, '=');
        let binder = if ascription || assignment {
            ident_at(toks, j - 1)
        } else {
            None
        };
        if let Some(name) = binder {
            if name != "mut" {
                names.insert(name.to_string());
            }
        }
    }
    names
}

/// Everything one file contributes to the workspace report: allow-filtered
/// diagnostics plus the inputs the P2 call-graph pass needs.
pub struct FileScan {
    pub diagnostics: Vec<Diagnostic>,
    pub symbols: crate::symbols::FileSymbols,
    /// Lines of P1 findings that survived allow filtering (pre-baseline).
    pub panic_lines: Vec<usize>,
    /// Lines targeted by `lint:allow(P2, ..)` directives.
    pub p2_allowed_lines: Vec<usize>,
}

/// Scan one scrubbed+tokenized file and return allow-filtered diagnostics.
///
/// P1 findings are included un-baselined; the caller applies the per-file
/// baseline ratchet.
pub fn scan_source(path: &str, src: &str, policy: ScanPolicy) -> Vec<Diagnostic> {
    scan_file(path, src, policy).diagnostics
}

/// Full per-file scan: diagnostics + symbol table + P2 inputs.
pub fn scan_file(path: &str, src: &str, policy: ScanPolicy) -> FileScan {
    let scrubbed = scrub(src);
    let toks = tokenize(&scrubbed.text);
    let ctx = contexts(&toks);
    let hash_names = if policy.hash_iter {
        collect_hash_idents(&toks, &ctx)
    } else {
        BTreeSet::new()
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let push = |diags: &mut Vec<Diagnostic>, rule: RuleCode, line: usize, message: String| {
        diags.push(Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
            baselined: false,
            deny: rule.default_deny(),
        });
    };

    for i in 0..toks.len() {
        if ctx[i].in_test {
            continue;
        }
        match &toks[i].tok {
            Tok::Ident(id) => {
                // D1.iter — `name.iter()` family on a hash-typed binding.
                if policy.hash_iter
                    && hash_names.contains(id.as_str())
                    && punct_at(&toks, i + 1, '.')
                {
                    if let Some(m) = ident_at(&toks, i + 2) {
                        if HASH_ITER_METHODS.contains(&m) && punct_at(&toks, i + 3, '(') {
                            push(
                                &mut diags,
                                RuleCode::D1Iter,
                                toks[i + 2].line,
                                format!(
                                    "iteration over hash-ordered `{id}` (`.{m}()`) is \
                                     non-deterministic; use BTreeMap/BTreeSet or sort the \
                                     results"
                                ),
                            );
                        }
                    }
                }
                // D1.iter — `for x in &name {`.
                if policy.hash_iter && id == "for" && is_loop_for(&toks, i) {
                    let mut k = i + 1;
                    let mut paren = 0i32;
                    while k < toks.len() {
                        match &toks[k].tok {
                            Tok::Punct('(') => paren += 1,
                            Tok::Punct(')') => paren -= 1,
                            Tok::Punct('{') if paren <= 0 => break,
                            Tok::Ident(s) if s == "in" && paren <= 0 => {
                                let mut v = k + 1;
                                while punct_at(&toks, v, '&') || ident_at(&toks, v) == Some("mut") {
                                    v += 1;
                                }
                                if let Some(name) = ident_at(&toks, v) {
                                    if hash_names.contains(name) && punct_at(&toks, v + 1, '{') {
                                        push(
                                            &mut diags,
                                            RuleCode::D1Iter,
                                            toks[v].line,
                                            format!(
                                                "`for .. in` over hash-ordered `{name}` is \
                                                 non-deterministic; use BTreeMap/BTreeSet or \
                                                 sort first"
                                            ),
                                        );
                                    }
                                }
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // D1.clock.
                if policy.wall_clock {
                    if id == "Instant"
                        && punct_at(&toks, i + 1, ':')
                        && punct_at(&toks, i + 2, ':')
                        && ident_at(&toks, i + 3) == Some("now")
                    {
                        push(
                            &mut diags,
                            RuleCode::D1Clock,
                            toks[i].line,
                            "`Instant::now` in deterministic code; timing belongs in bench \
                             surfaces"
                                .to_string(),
                        );
                    }
                    if id == "SystemTime" {
                        push(
                            &mut diags,
                            RuleCode::D1Clock,
                            toks[i].line,
                            "`SystemTime` in deterministic code; timing belongs in bench \
                             surfaces"
                                .to_string(),
                        );
                    }
                    if id == "thread_rng" {
                        push(
                            &mut diags,
                            RuleCode::D1Clock,
                            toks[i].line,
                            "`thread_rng` is unseeded; use the seeded generators".to_string(),
                        );
                    }
                }
                // O1.sink — allocation inside an obs emission argument list
                // (`scream_obs::event(&format!(..), ..)` and friends). The
                // sink API takes `&'static str` names and `u64` values so a
                // disabled sink allocates nothing; building strings or
                // vectors at the call site defeats that.
                if policy.obs_sink
                    && (id == "scream_obs" || id == "obs")
                    && punct_at(&toks, i + 1, ':')
                    && punct_at(&toks, i + 2, ':')
                    && ident_at(&toks, i + 3).is_some_and(|f| OBS_EMISSION_FNS.contains(&f))
                    && punct_at(&toks, i + 4, '(')
                {
                    let mut depth = 0i32;
                    let mut k = i + 4;
                    while k < toks.len() {
                        match &toks[k].tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Ident(a)
                                if (a == "format" || a == "vec") && punct_at(&toks, k + 1, '!') =>
                            {
                                push(
                                    &mut diags,
                                    RuleCode::O1Sink,
                                    toks[k].line,
                                    format!(
                                        "`{a}!` inside an obs emission argument allocates even \
                                         when the sink is disabled; emit `&'static str` names \
                                         and `u64` values only"
                                    ),
                                );
                            }
                            Tok::Ident(a)
                                if a == "String"
                                    && punct_at(&toks, k + 1, ':')
                                    && punct_at(&toks, k + 2, ':') =>
                            {
                                push(
                                    &mut diags,
                                    RuleCode::O1Sink,
                                    toks[k].line,
                                    "`String::` construction inside an obs emission argument \
                                     allocates even when the sink is disabled; emit `&'static \
                                     str` names and `u64` values only"
                                        .to_string(),
                                );
                            }
                            Tok::Punct('.')
                                if ident_at(&toks, k + 1).is_some_and(|m| {
                                    m == "to_string" || m == "to_owned" || m == "to_vec"
                                }) && punct_at(&toks, k + 2, '(') =>
                            {
                                push(
                                    &mut diags,
                                    RuleCode::O1Sink,
                                    toks[k + 1].line,
                                    format!(
                                        "`.{}()` inside an obs emission argument allocates even \
                                         when the sink is disabled; emit `&'static str` names \
                                         and `u64` values only",
                                        ident_at(&toks, k + 1).unwrap_or("to_string")
                                    ),
                                );
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // P1 — macro panics.
                if matches!(
                    id.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && punct_at(&toks, i + 1, '!')
                {
                    push(
                        &mut diags,
                        RuleCode::P1Panic,
                        toks[i].line,
                        format!(
                            "`{id}!` in library code; return an error or justify with an \
                                 allow"
                        ),
                    );
                }
                // H1.hot — per-unit baseline identifiers.
                if id == "schedule_per_unit" {
                    push(
                        &mut diags,
                        RuleCode::H1Hot,
                        toks[i].line,
                        "`schedule_per_unit` is the O(total demand) baseline; production \
                         paths use `GreedyPhysical::schedule`"
                            .to_string(),
                    );
                }
                if id == "FromScratch" {
                    push(
                        &mut diags,
                        RuleCode::H1Hot,
                        toks[i].line,
                        "`FromScratch` is the O(k^2) baseline model; production paths use \
                         the incremental ledger"
                            .to_string(),
                    );
                }
                // H1.alloc — ledger type constructions inside loops.
                if ctx[i].loop_depth >= 1
                    && LEDGER_TYPES.contains(&id.as_str())
                    && punct_at(&toks, i + 1, ':')
                    && punct_at(&toks, i + 2, ':')
                {
                    push(
                        &mut diags,
                        RuleCode::H1Alloc,
                        toks[i].line,
                        format!(
                            "`{id}::` construction inside a loop; hoist it out and reuse \
                                 via `clear()`"
                        ),
                    );
                }
                if ctx[i].loop_depth >= 1
                    && id == "FrameService"
                    && punct_at(&toks, i + 1, ':')
                    && punct_at(&toks, i + 2, ':')
                    && ident_at(&toks, i + 3) == Some("from_schedule")
                {
                    push(
                        &mut diags,
                        RuleCode::H1Alloc,
                        toks[i].line,
                        "`FrameService::from_schedule` inside a loop rebuilds the frame \
                         index each iteration"
                            .to_string(),
                    );
                }
                // F1.cmp — partial_cmp(..).unwrap()/.expect(..).
                if id == "partial_cmp" && ident_at(&toks, i.wrapping_sub(1)) != Some("fn") {
                    let mut k = i + 1;
                    let limit = (i + 40).min(toks.len());
                    while k < limit {
                        if punct_at(&toks, k, ';') {
                            break;
                        }
                        if punct_at(&toks, k, '.') {
                            if let Some(m) = ident_at(&toks, k + 1) {
                                if m == "unwrap" || m == "expect" {
                                    push(
                                        &mut diags,
                                        RuleCode::F1Cmp,
                                        toks[i].line,
                                        "`partial_cmp(..).unwrap()` panics on NaN; use \
                                         `total_cmp`"
                                            .to_string(),
                                    );
                                    break;
                                }
                            }
                        }
                        k += 1;
                    }
                }
            }
            Tok::Punct('.') => {
                let Some(m) = ident_at(&toks, i + 1) else {
                    continue;
                };
                // P1 — `.unwrap()` / `.expect(`.
                if m == "unwrap" && punct_at(&toks, i + 2, '(') && punct_at(&toks, i + 3, ')') {
                    push(
                        &mut diags,
                        RuleCode::P1Panic,
                        toks[i + 1].line,
                        "`.unwrap()` in library code; handle the None/Err or justify with \
                         an allow"
                            .to_string(),
                    );
                }
                if m == "expect" && punct_at(&toks, i + 2, '(') {
                    push(
                        &mut diags,
                        RuleCode::P1Panic,
                        toks[i + 1].line,
                        "`.expect(..)` in library code; handle the None/Err or justify \
                         with an allow"
                            .to_string(),
                    );
                }
                // H1.hot — `.slots()` expansion.
                if m == "slots" && punct_at(&toks, i + 2, '(') && punct_at(&toks, i + 3, ')') {
                    push(
                        &mut diags,
                        RuleCode::H1Hot,
                        toks[i + 1].line,
                        "`.slots()` expands the run-length schedule; iterate \
                         `Schedule::runs()` on library paths"
                            .to_string(),
                    );
                }
                // H1.alloc — accumulator openers inside loops.
                if ctx[i].loop_depth >= 1
                    && ACCUMULATOR_OPENERS.contains(&m)
                    && punct_at(&toks, i + 2, '(')
                {
                    push(
                        &mut diags,
                        RuleCode::H1Alloc,
                        toks[i + 1].line,
                        format!(
                            "`.{m}()` allocates a fresh accumulator inside a loop; hoist \
                                 or justify the amortization with an allow"
                        ),
                    );
                }
            }
            // F1.eq — `== 1.0` / `!= 1.0` and the mirrored forms.
            Tok::Punct(op @ ('=' | '!'))
                if policy.float_eq && punct_at(&toks, i + 1, '=') && float_at(&toks, i + 2) =>
            {
                // Exclude `>=`, `<=`, `=>` by checking the previous token
                // is not part of a two-char operator ending here.
                let prev_op = matches!(
                    toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Punct('<' | '>' | '=' | '!'))
                );
                if !(*op == '=' && prev_op) {
                    push(
                        &mut diags,
                        RuleCode::F1Eq,
                        toks[i].line,
                        "exact float comparison in verdict code; compare with a \
                         tolerance or use `total_cmp`"
                            .to_string(),
                    );
                }
            }
            Tok::Num { float: true }
                if policy.float_eq
                    && ((punct_at(&toks, i + 1, '=') && punct_at(&toks, i + 2, '='))
                        || (punct_at(&toks, i + 1, '!') && punct_at(&toks, i + 2, '='))) =>
            {
                push(
                    &mut diags,
                    RuleCode::F1Eq,
                    toks[i].line,
                    "exact float comparison in verdict code; compare with a tolerance \
                     or use `total_cmp`"
                        .to_string(),
                );
            }
            _ => {}
        }
    }

    let symbols = crate::symbols::index_tokens(&toks);
    if policy.units {
        crate::units::scan_units(path, &toks, &ctx, &symbols, &mut diags);
    }

    let (diagnostics, p2_allowed_lines) =
        apply_allows(path, &scrubbed.text, &scrubbed.allows, diags);
    let panic_lines = diagnostics
        .iter()
        .filter(|d| d.rule == RuleCode::P1Panic)
        .map(|d| d.line)
        .collect();
    FileScan {
        diagnostics,
        symbols,
        panic_lines,
        p2_allowed_lines,
    }
}

/// Resolve allow directives against raw diagnostics; emit L1 findings for
/// malformed, unknown and unused directives. Also returns the target lines
/// of P2-family directives (consumed by the call-graph pass).
fn apply_allows(
    path: &str,
    scrubbed_text: &str,
    allows: &[AllowDirective],
    diags: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<usize>) {
    // Per-line "carries code" map for standalone-directive targeting.
    let line_has_code: Vec<bool> = scrubbed_text
        .split('\n')
        .map(|l| l.chars().any(|c| !c.is_whitespace()))
        .collect();
    let target_of = |d: &AllowDirective| -> Option<usize> {
        if !d.standalone {
            return Some(d.line);
        }
        (d.line..line_has_code.len())
            .find(|&l| line_has_code[l])
            .map(|l| l + 1)
    };

    let mut out: Vec<Diagnostic> = Vec::new();
    let mut used = vec![false; allows.len()];
    let mut p2_lines: Vec<usize> = Vec::new();
    // (target_line, allow index) for well-formed directives.
    let mut targets: Vec<(usize, usize)> = Vec::new();
    for (ai, d) in allows.iter().enumerate() {
        if let Some(err) = &d.error {
            out.push(Diagnostic {
                path: path.to_string(),
                line: d.line,
                rule: RuleCode::L1Allow,
                message: format!("malformed lint:allow — {err}"),
                baselined: false,
                deny: RuleCode::L1Allow.default_deny(),
            });
            continue;
        }
        let mut bad_rule = false;
        for r in &d.rules {
            if !RuleCode::is_allowable_name(r) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: d.line,
                    rule: RuleCode::L1Allow,
                    message: format!("lint:allow names unknown rule `{r}`"),
                    baselined: false,
                    deny: RuleCode::L1Allow.default_deny(),
                });
                bad_rule = true;
            }
        }
        if bad_rule {
            continue;
        }
        if let Some(line) = target_of(d) {
            // P2 allows act on the reachability report, not on token
            // diagnostics — record the target and exempt from L1.unused.
            if d.rules.iter().any(|r| RuleCode::is_p2_name(r)) {
                p2_lines.push(line);
                used[ai] = true;
            }
            targets.push((line, ai));
        }
    }

    for diag in diags {
        let mut suppressed = false;
        for &(line, ai) in &targets {
            if line != diag.line {
                continue;
            }
            let d = &allows[ai];
            if d.rules
                .iter()
                .any(|r| r == diag.rule.family() || r == diag.rule.code())
            {
                suppressed = true;
                used[ai] = true;
            }
        }
        if !suppressed {
            out.push(diag);
        }
    }

    for (ai, d) in allows.iter().enumerate() {
        if d.error.is_none() && !used[ai] && d.rules.iter().all(|r| RuleCode::is_allowable_name(r))
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: d.line,
                rule: RuleCode::L1Unused,
                message: format!(
                    "lint:allow({}) suppresses nothing; remove it",
                    d.rules.join(", ")
                ),
                baselined: false,
                deny: RuleCode::L1Unused.default_deny(),
            });
        }
    }

    out.sort();
    out.dedup();
    p2_lines.sort_unstable();
    p2_lines.dedup();
    (out, p2_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: ScanPolicy = ScanPolicy {
        hash_iter: true,
        wall_clock: true,
        float_eq: true,
        units: true,
        obs_sink: true,
    };

    fn codes(src: &str) -> Vec<&'static str> {
        scan_source("crates/x/src/lib.rs", src, ALL)
            .into_iter()
            .map(|d| d.rule.code())
            .collect()
    }

    // ---- D1.iter ----

    #[test]
    fn d1_flags_hash_map_iteration() {
        let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
"#;
        assert_eq!(codes(src), vec!["D1.iter"]);
    }

    #[test]
    fn d1_flags_for_loop_over_hash_set() {
        let src = r#"
fn f() {
    let mut seen: std::collections::HashSet<u64> = Default::default();
    for v in &seen {
        let _ = v;
    }
}
"#;
        assert_eq!(codes(src), vec!["D1.iter"]);
    }

    #[test]
    fn d1_ignores_lookup_only_hash_use() {
        let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&3).copied()
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn d1_ignores_btree_iteration() {
        let src = r#"
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn d1_flags_assignment_bound_hash() {
        let src = r#"
fn f() {
    let mut index = std::collections::HashMap::new();
    index.insert(1u32, 2u32);
    let _: Vec<_> = index.values().collect();
}
"#;
        assert_eq!(codes(src), vec!["D1.iter"]);
    }

    #[test]
    fn d1_clock_flags_instant_and_thread_rng() {
        let src = r#"
fn f() {
    let t = Instant::now();
    let r = thread_rng();
}
"#;
        assert_eq!(codes(src), vec!["D1.clock", "D1.clock"]);
    }

    #[test]
    fn d1_clock_respects_policy() {
        let src = "fn f() { let t = Instant::now(); }";
        let p = ScanPolicy {
            wall_clock: false,
            ..ALL
        };
        assert!(scan_source("crates/bench/src/lib.rs", src, p).is_empty());
    }

    // ---- P1 ----

    #[test]
    fn p1_flags_unwrap_expect_and_panics() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("boom");
    }
    x.unwrap()
}
fn g(x: Option<u32>) -> u32 {
    x.expect("present")
}
"#;
        assert_eq!(codes(src), vec!["P1.panic", "P1.panic", "P1.panic"]);
    }

    #[test]
    fn p1_ignores_unwrap_or_family() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0).max(x.unwrap_or_default())
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn p1_ignores_test_modules() {
        let src = r#"
fn lib_code() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1u32).unwrap();
        panic!("fine in tests");
    }
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn p1_ignores_cfg_not_test_is_still_checked() {
        let src = r#"
#[cfg(not(test))]
fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        assert_eq!(codes(src), vec!["P1.panic"]);
    }

    #[test]
    fn p1_ignores_strings_and_comments() {
        let src = r#"
// this mentions .unwrap() and panic!("x") in prose
fn f() -> &'static str {
    "contains .unwrap() and panic!(text)"
}
"#;
        assert!(codes(src).is_empty());
    }

    // ---- H1 ----

    #[test]
    fn h1_flags_slots_and_baselines() {
        let src = r#"
fn f(s: &Schedule) -> usize {
    let n = s.slots().len();
    let sched = greedy.schedule_per_unit(&model, &demands);
    let m = FromScratch(EndpointOnly);
    n
}
"#;
        assert_eq!(codes(src), vec!["H1.hot", "H1.hot", "H1.hot"]);
    }

    #[test]
    fn h1_slots_definition_is_not_flagged() {
        let src = r#"
impl Schedule {
    pub fn slots(&self) -> Vec<SlotPattern> {
        Vec::new()
    }
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn h1_alloc_flags_construction_only_inside_loops() {
        let src = r#"
fn fine(env: &Environment) {
    let mut ledger = SlotLedger::new(env);
    ledger.clear();
}
fn bad(env: &Environment, xs: &[u32]) {
    for _x in xs {
        let mut ledger = SlotLedger::new(env);
        let acc = model.open_channel_slot();
    }
}
"#;
        assert_eq!(codes(src), vec!["H1.alloc", "H1.alloc"]);
    }

    #[test]
    fn h1_alloc_tracks_loop_depth_through_nesting() {
        let src = r#"
fn f(env: &Environment) {
    let outer = ChannelSlotLedger::new(env, 2);
    while remaining > 0 {
        if cond {
            let inner = env.open_slot_ledger();
        }
    }
    let after = env.open_slot_ledger();
}
"#;
        // Only the `while`-nested construction is flagged: the `if` block
        // adds a brace but not a loop, and `after` is back at depth 0.
        let d = scan_source("crates/x/src/lib.rs", src, ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule.code(), "H1.alloc");
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn h1_impl_trait_for_is_not_a_loop() {
        let src = r#"
impl SlotFeasibility for Wrapper {
    fn probe(&self) -> bool { true }
}
fn f(env: &Environment) {
    let l = SlotLedger::new(env);
}
"#;
        assert!(codes(src).is_empty());
    }

    // ---- F1 ----

    #[test]
    fn f1_flags_partial_cmp_unwrap() {
        let src = r#"
fn f(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
"#;
        let c = codes(src);
        assert!(c.contains(&"F1.cmp"), "{c:?}");
    }

    #[test]
    fn f1_ignores_total_cmp_and_partial_cmp_definitions() {
        let src = r#"
fn f(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn f1_flags_float_literal_equality() {
        let src = r#"
fn verdict(load: f64) -> bool {
    load == 1.0
}
"#;
        assert_eq!(codes(src), vec!["F1.eq"]);
    }

    #[test]
    fn f1_ignores_float_range_comparisons() {
        let src = r#"
fn verdict(load: f64) -> bool {
    load >= 1.0 && load <= 2.0 && 0.5 < load
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn f1_eq_is_warn_class_by_default() {
        let d = scan_source(
            "crates/x/src/lib.rs",
            "fn f(x: f64) -> bool { x == 0.0 }",
            ALL,
        );
        assert_eq!(d.len(), 1);
        assert!(!d[0].deny);
    }

    // ---- allows + L1 ----

    #[test]
    fn allow_suppresses_same_line_and_next_line() {
        let src = r#"
fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect(); // lint:allow(D1, reason = "sorted on the next line")
    v.sort_unstable();
    v
}
fn g(x: Option<u32>) -> u32 {
    // lint:allow(P1, reason = "guarded by caller invariant")
    x.unwrap()
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn allow_with_full_code_matches() {
        let src = r#"
fn g(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(P1.panic, reason = "infallible by construction")
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_l1() {
        let src = r#"
fn g(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(P1)
}
"#;
        let c = codes(src);
        assert!(c.contains(&"L1.allow"), "{c:?}");
        assert!(
            c.contains(&"P1.panic"),
            "unsuppressed without a valid allow: {c:?}"
        );
    }

    #[test]
    fn allow_unknown_rule_is_l1() {
        let src = r#"
fn g() -> u32 {
    1 // lint:allow(Q9, reason = "no such rule")
}
"#;
        assert_eq!(codes(src), vec!["L1.allow"]);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = r#"
fn g() -> u32 {
    1 // lint:allow(P1, reason = "nothing here needs it")
}
"#;
        assert_eq!(codes(src), vec!["L1.unused"]);
    }

    #[test]
    fn allow_for_wrong_family_does_not_suppress() {
        let src = r#"
fn g(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(D1, reason = "wrong family")
}
"#;
        let c = codes(src);
        assert!(c.contains(&"P1.panic"), "{c:?}");
        assert!(c.contains(&"L1.unused"), "{c:?}");
    }

    // ---- O1.sink ----

    #[test]
    fn o1_flags_format_in_emission_args() {
        let src = r#"
fn f(link: u32) {
    scream_obs::event(&format!("link.{link}"), &[]);
}
"#;
        assert_eq!(codes(src), vec!["O1.sink"]);
    }

    #[test]
    fn o1_flags_to_string_and_string_from() {
        let src = r#"
fn f(n: u64) {
    scream_obs::counter_add(name.to_string(), 1);
    obs::gauge_set(String::from("fill"), n);
}
"#;
        assert_eq!(codes(src), vec!["O1.sink", "O1.sink"]);
    }

    #[test]
    fn o1_flags_vec_macro_in_event_fields() {
        let src = r#"
fn f() {
    scream_obs::event("greedy.link", &vec![("head", 1u64)]);
}
"#;
        assert_eq!(codes(src), vec!["O1.sink"]);
    }

    #[test]
    fn o1_ignores_static_emission() {
        let src = r#"
fn f(rejects: u64) {
    scream_obs::counter_add("ledger.probe.reject", rejects);
    scream_obs::observe("greedy.firstfit.depth", rejects.saturating_add(1));
    scream_obs::event("greedy.link", &[("rejects", rejects)]);
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn o1_ignores_allocation_outside_emission() {
        let src = r#"
fn f(rejects: u64) -> String {
    scream_obs::counter_add("x", rejects);
    format!("{rejects} rejects")
}
"#;
        assert!(codes(src).is_empty());
    }

    #[test]
    fn o1_ignores_test_code_and_respects_policy() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        scream_obs::event(&format!("free-form"), &[]);
    }
}
"#;
        assert!(codes(src).is_empty());
        let src = "fn f() { scream_obs::event(&format!(\"x\"), &[]); }";
        let p = ScanPolicy {
            obs_sink: false,
            ..ALL
        };
        assert!(scan_source("crates/x/src/lib.rs", src, p).is_empty());
    }

    #[test]
    fn o1_is_allow_suppressible() {
        let src = r#"
fn f() {
    scream_obs::event(&format!("x"), &[]) // lint:allow(O1.sink, reason = "cold path")
}
"#;
        assert!(codes(src).is_empty());
    }
}
