//! **P2** — workspace call graph with panic-reachability.
//!
//! Builds a conservative call graph over the symbol tables of every scanned
//! file, marks functions whose bodies contain an (un-allowed) P1 panic
//! site, propagates reachability backwards over call edges, and reports the
//! *public* functions that can transitively reach a panic. The report is a
//! committed ratchet file (`crates/lint/p2_reach.txt`): CI fails when a new
//! public API becomes panic-reachable, and `--write-baseline` re-records
//! the shrinking set.
//!
//! Resolution is name-based and deliberately over-approximate:
//!
//! * a call edges to every same-crate function of that name (any
//!   visibility) and every `pub` function of that name in other crates;
//! * a `Type::name(..)` qualifier narrows the candidates to functions whose
//!   `impl` owner matches, when any do;
//! * method calls (`x.name(..)`) match by name alone — receiver types are
//!   invisible to a lexical scan.
//!
//! Over-approximation only ever *adds* entries to the report, so the
//! ratchet direction is safe: an entry disappearing means the panic became
//! unreachable under even the pessimistic graph.

use crate::symbols::{FileSymbols, Visibility};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Per-file input to the graph: symbols plus the file's un-allowed P1 panic
/// lines and the lines targeted by `lint:allow(P2, ..)` directives.
pub struct FileEntry<'a> {
    /// Workspace crate the file belongs to (e.g. `netsim`).
    pub krate: &'a str,
    /// Workspace-relative path, for locating report entries.
    pub path: &'a str,
    pub symbols: &'a FileSymbols,
    /// Lines of P1 findings that survived `lint:allow` filtering (baselined
    /// or not — a baselined panic is still a panic at runtime).
    pub panic_lines: &'a [usize],
    /// Signature lines excluded from the report by a P2 allow.
    pub p2_allowed_lines: &'a [usize],
}

struct Node {
    krate: String,
    path: String,
    line: usize,
    name: String,
    owner: Option<String>,
    visibility: Visibility,
    direct_panic: bool,
    p2_allowed: bool,
}

/// The computed graph and its panic-reachability closure.
pub struct ReachReport {
    /// Public functions that transitively reach a panic, as
    /// `crate::Owner::fn` entries (sorted, deduped, allow-filtered).
    pub public_reach: BTreeSet<String>,
    /// Definition site of each report entry, for diagnostics on growth.
    pub locations: BTreeMap<String, (String, usize)>,
    /// Total functions in the graph (diagnostic surface for `--json`).
    pub functions: usize,
    /// Functions containing a direct panic site.
    pub direct: usize,
    /// Functions (any visibility) from which a panic is reachable.
    pub reachable: usize,
}

/// Build the workspace call graph and compute the panic-reachability report.
pub fn analyze(files: &[FileEntry<'_>]) -> ReachReport {
    // ---- nodes ----
    let mut nodes: Vec<Node> = Vec::new();
    // (file index, fn index within file) -> node index, for edge attribution.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (si, func) in f.symbols.functions.iter().enumerate() {
            if func.in_test {
                continue;
            }
            let Some(body) = func.body_lines else {
                continue; // trait signatures: no body, nothing to reach
            };
            let direct_panic = f.panic_lines.iter().any(|&l| l >= body.0 && l <= body.1);
            let p2_allowed = f.p2_allowed_lines.contains(&func.line);
            node_of.insert((fi, si), nodes.len());
            nodes.push(Node {
                krate: f.krate.to_string(),
                path: f.path.to_string(),
                line: func.line,
                name: func.name.clone(),
                owner: func.owner.clone(),
                visibility: func.visibility,
                direct_panic,
                p2_allowed,
            });
        }
    }

    // ---- name index: callee name -> candidate node indices ----
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(ni);
    }

    // ---- edges (reverse adjacency: callee -> callers) ----
    let mut callers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
    for (fi, f) in files.iter().enumerate() {
        for call in &f.symbols.calls {
            if call.in_test {
                continue;
            }
            let Some(si) = call.caller else {
                continue; // top-level (const initializer etc.)
            };
            let Some(&caller) = node_of.get(&(fi, si)) else {
                continue;
            };
            let Some(candidates) = by_name.get(call.callee.as_str()) else {
                continue; // std / external — not in the workspace graph
            };
            let visible: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&ni| {
                    nodes[ni].krate == f.krate || nodes[ni].visibility == Visibility::Public
                })
                .collect();
            // A `Type::name(..)` qualifier narrows to owner-matching fns
            // when any exist; otherwise stay conservative.
            let narrowed: Vec<usize> = match &call.qualifier {
                Some(q) => {
                    let owned: Vec<usize> = visible
                        .iter()
                        .copied()
                        .filter(|&ni| nodes[ni].owner.as_deref() == Some(q.as_str()))
                        .collect();
                    if owned.is_empty() {
                        visible
                    } else {
                        owned
                    }
                }
                None => visible,
            };
            for callee in narrowed {
                callers[callee].insert(caller);
            }
        }
    }

    // ---- reachability: reverse BFS from direct-panic nodes ----
    let mut reach = vec![false; nodes.len()];
    let mut queue: Vec<usize> = (0..nodes.len())
        .filter(|&ni| nodes[ni].direct_panic)
        .collect();
    for &ni in &queue {
        reach[ni] = true;
    }
    while let Some(ni) = queue.pop() {
        for &caller in &callers[ni] {
            if !reach[caller] {
                reach[caller] = true;
                queue.push(caller);
            }
        }
    }

    let mut public_reach = BTreeSet::new();
    let mut locations = BTreeMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        if reach[ni] && n.visibility == Visibility::Public && !n.p2_allowed {
            let owner = n
                .owner
                .as_ref()
                .map(|o| format!("{o}::"))
                .unwrap_or_default();
            let entry = format!("{}::{owner}{}", n.krate, n.name);
            locations
                .entry(entry.clone())
                .or_insert((n.path.clone(), n.line));
            public_reach.insert(entry);
        }
    }

    ReachReport {
        public_reach,
        locations,
        functions: nodes.len(),
        direct: nodes.iter().filter(|n| n.direct_panic).count(),
        reachable: reach.iter().filter(|&&r| r).count(),
    }
}

/// Load a committed reach report: one `crate::Owner::fn` entry per line,
/// `#` comments and blanks ignored. Missing file → empty set.
pub fn load_reach(path: &Path) -> BTreeSet<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Write the reach report in its committed format.
pub fn save_reach(path: &Path, entries: &BTreeSet<String>) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("# scream-lint P2 panic-reachability report. One public fn per line that\n");
    out.push_str("# can transitively reach a P1 panic site. Ratchet-down only: regenerate\n");
    out.push_str("# with `scream-lint --write-baseline` after removing panics.\n");
    for e in entries {
        out.push_str(e);
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_source, RuleCode, ScanPolicy};
    use crate::symbols::index_source;

    const POLICY: ScanPolicy = ScanPolicy {
        hash_iter: true,
        wall_clock: true,
        float_eq: false,
        units: false,
        obs_sink: false,
    };

    fn panic_lines(path: &str, src: &str) -> Vec<usize> {
        scan_source(path, src, POLICY)
            .into_iter()
            .filter(|d| d.rule == RuleCode::P1Panic)
            .map(|d| d.line)
            .collect()
    }

    fn entries(files: &[(&str, &str)]) -> BTreeSet<String> {
        let syms: Vec<_> = files.iter().map(|(_, src)| index_source(src)).collect();
        let panics: Vec<Vec<usize>> = files
            .iter()
            .map(|(k, src)| panic_lines(&format!("crates/{k}/src/lib.rs"), src))
            .collect();
        let fes: Vec<FileEntry> = files
            .iter()
            .enumerate()
            .map(|(i, (k, _))| FileEntry {
                krate: k,
                path: "crates/x/src/lib.rs",
                symbols: &syms[i],
                panic_lines: &panics[i],
                p2_allowed_lines: &[],
            })
            .collect();
        analyze(&fes).public_reach
    }

    #[test]
    fn direct_and_transitive_reach_through_free_fns() {
        let src = r#"
fn deep(x: Option<u32>) -> u32 { x.unwrap() }
pub fn middle(x: Option<u32>) -> u32 { deep(x) }
pub fn safe() -> u32 { 1 }
"#;
        let got = entries(&[("core", src)]);
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            vec!["core::middle".to_string()],
            "private `deep` is not reported; `safe` does not reach"
        );
    }

    #[test]
    fn method_calls_reach_through_impl_blocks() {
        let src = r#"
pub struct Sched;
impl Sched {
    fn slot_of(&self, i: usize) -> usize {
        if i > 10 { panic!("out of range"); }
        i
    }
    pub fn build(&self) -> usize { self.slot_of(3) }
}
"#;
        let got = entries(&[("sched", src)]);
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            vec!["sched::Sched::build".to_string()]
        );
    }

    #[test]
    fn cross_crate_edges_require_pub() {
        let lib = r#"
pub fn pub_panics(x: Option<u32>) -> u32 { x.unwrap() }
fn private_panics(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let app = r#"
pub fn uses_pub(x: Option<u32>) -> u32 { pub_panics(x) }
pub fn uses_private_name(x: Option<u32>) -> u32 { private_panics(x) }
"#;
        let got = entries(&[("netsim", lib), ("app", app)]);
        let got: Vec<_> = got.into_iter().collect();
        assert!(got.contains(&"netsim::pub_panics".to_string()));
        assert!(got.contains(&"app::uses_pub".to_string()));
        assert!(
            !got.contains(&"app::uses_private_name".to_string()),
            "a private fn in another crate is not callable: {got:?}"
        );
    }

    #[test]
    fn recursion_cycles_terminate_and_propagate() {
        let src = r#"
pub fn ping(n: u32) -> u32 { if n == 0 { boom() } else { pong(n - 1) } }
pub fn pong(n: u32) -> u32 { ping(n) }
fn boom() -> u32 { panic!("base case") }
"#;
        let got = entries(&[("core", src)]);
        let got: Vec<_> = got.into_iter().collect();
        assert_eq!(
            got,
            vec!["core::ping".to_string(), "core::pong".to_string()]
        );
    }

    #[test]
    fn qualifier_narrows_to_the_owning_impl() {
        let src = r#"
pub struct A;
pub struct B;
impl A {
    pub fn make() -> u32 { panic!("A::make panics") }
}
impl B {
    pub fn make() -> u32 { 1 }
}
pub fn build_b() -> u32 { B::make() }
pub fn build_a() -> u32 { A::make() }
"#;
        let got = entries(&[("core", src)]);
        let got: Vec<_> = got.into_iter().collect();
        assert!(got.contains(&"core::A::make".to_string()));
        assert!(got.contains(&"core::build_a".to_string()));
        assert!(
            !got.contains(&"core::build_b".to_string()),
            "the `B::` qualifier resolves away from A::make: {got:?}"
        );
    }

    #[test]
    fn test_code_creates_no_edges_or_nodes() {
        let src = r#"
pub fn clean() -> u32 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        clean();
        Some(1u32).unwrap();
    }
}
"#;
        assert!(entries(&[("core", src)]).is_empty());
    }

    #[test]
    fn p2_allow_excludes_the_fn_from_the_report() {
        let src = r#"
pub fn documented_panic(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let syms = index_source(src);
        let panics = panic_lines("crates/core/src/lib.rs", src);
        let allowed = vec![2usize]; // the `pub fn` line
        let fe = FileEntry {
            krate: "core",
            path: "crates/core/src/lib.rs",
            symbols: &syms,
            panic_lines: &panics,
            p2_allowed_lines: &allowed,
        };
        assert!(analyze(&[fe]).public_reach.is_empty());
    }

    #[test]
    fn reach_file_round_trips() {
        let dir = std::env::temp_dir().join("scream_lint_p2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p2_reach.txt");
        let mut set = BTreeSet::new();
        set.insert("core::Runtime::run".to_string());
        set.insert("netsim::dbm_to_mw".to_string());
        save_reach(&path, &set).unwrap();
        assert_eq!(load_reach(&path), set);
        std::fs::remove_file(&path).unwrap();
    }
}
