//! CLI for the workspace static-analysis pass. See the library docs and the
//! README "Static analysis" section for the rule table.

use scream_lint::{
    default_baseline_path, default_reach_path, find_workspace_root, lint_workspace, Config, Report,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
scream-lint — workspace static analysis for the SCREAM conventions

USAGE:
    cargo run -p scream-lint -- [OPTIONS]

OPTIONS:
    --root <PATH>        workspace root (default: walk up to [workspace])
    --baseline <PATH>    P1 baseline file (default: crates/lint/p1_baseline.txt)
    --reach <PATH>       P2 reach report (default: crates/lint/p2_reach.txt)
    --write-baseline     regenerate the P1 baseline and P2 reach report
    --deny[=RULE]        treat all rules (or one family/code) as errors
    --warn[=RULE]        treat all rules (or one family/code) as warnings
    --json               machine-readable output
    -h, --help           this text

RULES:
    D1.iter   hash-order iteration in deterministic library code
    D1.clock  Instant::now / SystemTime / thread_rng outside bench surfaces
    P1.panic  unwrap/expect/panic! without an allow (baseline-ratcheted)
    H1.hot    .slots() / schedule_per_unit / FromScratch outside tests
    H1.alloc  ledger/accumulator construction inside loop bodies
    F1.cmp    partial_cmp(..).unwrap() — use total_cmp
    F1.eq     exact float comparison in verdict code (warn by default)
    U1.mix    cross-unit arithmetic/comparison (a_db + b_mw, x_m <= y_m2)
    U1.bind   cross-unit binding/assignment (let range_m = area_m2)
    U1.conv   suffix-dishonest conversion call (dbm_to_mw(-loss_db))
    P2.reach  new public API transitively reaches a panic (ratchet)
    L1.*      malformed or unused lint:allow directives

Suppress a finding with a justified inline comment:
    let x = m.keys().collect(); // lint:allow(D1, reason = \"sorted below\")
";

struct Args {
    config: Config,
    json: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut reach: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut json = false;
    let mut overrides: Vec<(Option<String>, bool)> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--deny" => overrides.push((None, true)),
            "--warn" => overrides.push((None, false)),
            "--root" => match argv.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return Err("--root requires a path".to_string()),
            },
            "--baseline" => match argv.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline requires a path".to_string()),
            },
            "--reach" => match argv.next() {
                Some(p) => reach = Some(PathBuf::from(p)),
                None => return Err("--reach requires a path".to_string()),
            },
            other => {
                if let Some(rule) = other.strip_prefix("--deny=") {
                    overrides.push((Some(rule.to_string()), true));
                } else if let Some(rule) = other.strip_prefix("--warn=") {
                    overrides.push((Some(rule.to_string()), false));
                } else if let Some(path) = other.strip_prefix("--root=") {
                    root = Some(PathBuf::from(path));
                } else if let Some(path) = other.strip_prefix("--baseline=") {
                    baseline = Some(PathBuf::from(path));
                } else if let Some(path) = other.strip_prefix("--reach=") {
                    reach = Some(PathBuf::from(path));
                } else {
                    return Err(format!("unknown argument `{other}` (see --help)"));
                }
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd =
                std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or_else(|| "no [workspace] Cargo.toml above the current dir".to_string())?
        }
    };
    let baseline_path = baseline.unwrap_or_else(|| default_baseline_path(&root));
    let reach_path = reach.unwrap_or_else(|| default_reach_path(&root));
    Ok(Some(Args {
        config: Config {
            root,
            baseline_path,
            reach_path,
            write_baseline,
            class_overrides: overrides,
        },
        json,
    }))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &Report) {
    let mut items: Vec<String> = Vec::new();
    for d in report.diagnostics.iter().chain(report.baselined.iter()) {
        items.push(format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"class\":\"{}\",\
             \"baselined\":{},\"message\":\"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.rule.code(),
            if d.deny { "deny" } else { "warn" },
            d.baselined,
            json_escape(&d.message),
        ));
    }
    let violations: Vec<String> = report
        .baseline_violations
        .iter()
        .map(|v| {
            format!(
                "{{\"path\":\"{}\",\"current\":{},\"allowed\":{}}}",
                json_escape(&v.path),
                v.current,
                v.allowed
            )
        })
        .collect();
    let p2_violations: Vec<String> = report
        .p2_violations
        .iter()
        .map(|(entry, path, line)| {
            format!(
                "{{\"entry\":\"{}\",\"path\":\"{}\",\"line\":{line}}}",
                json_escape(entry),
                json_escape(path),
            )
        })
        .collect();
    let p2_entries: Vec<String> = report
        .p2_entries
        .iter()
        .map(|e| format!("\"{}\"", json_escape(e)))
        .collect();
    println!(
        "{{\"files_scanned\":{},\"deny\":{},\"warn\":{},\"p1_current\":{},\
         \"p1_baseline\":{},\"p2_current\":{},\"p2_committed\":{},\
         \"baseline_written\":{},\"failed\":{},\
         \"baseline_violations\":[{}],\"p2_violations\":[{}],\
         \"p2_entries\":[{}],\"diagnostics\":[{}]}}",
        report.files_scanned,
        report.deny_count(),
        report.warn_count(),
        report.p1_current,
        report.p1_baseline,
        report.p2_entries.len(),
        report.p2_committed,
        report.baseline_written,
        report.failed(),
        violations.join(","),
        p2_violations.join(","),
        p2_entries.join(","),
        items.join(",")
    );
}

fn print_text(report: &Report) {
    for d in &report.diagnostics {
        let class = if d.deny { "error" } else { "warning" };
        println!(
            "{}:{}: {class} {}: {}",
            d.path,
            d.line,
            d.rule.code(),
            d.message
        );
    }
    for v in &report.baseline_violations {
        println!(
            "{}: error P1.panic: {} unallowed panic sites exceed the committed baseline ({}) \
             — remove them or justify with lint:allow",
            v.path, v.current, v.allowed
        );
    }
    for (entry, path, line) in &report.p2_violations {
        println!(
            "{path}:{line}: error P2.reach: public `{entry}` now transitively reaches a \
             panic site — remove the panic, drop `pub`, or justify with lint:allow(P2, ..)"
        );
    }
    println!(
        "scream-lint: {} files scanned, {} errors, {} warnings; P1 sites {} \
         (baseline {}); P2 panic-reachable public fns {} (committed {}{})",
        report.files_scanned,
        report.deny_count() + report.baseline_violations.len() + report.p2_violations.len(),
        report.warn_count(),
        report.p1_current,
        report.p1_baseline,
        report.p2_entries.len(),
        report.p2_committed,
        if report.baseline_written {
            ", rewritten"
        } else {
            ""
        }
    );
    if report.p1_current < report.p1_baseline && !report.baseline_written {
        println!(
            "note: P1 total dropped below the baseline ({} < {}); run with \
             --write-baseline to ratchet down",
            report.p1_current, report.p1_baseline
        );
    }
    if report.p2_entries.len() < report.p2_committed && !report.baseline_written {
        println!(
            "note: P2 reach set shrank below the committed report ({} < {}); run with \
             --write-baseline to ratchet down",
            report.p2_entries.len(),
            report.p2_committed
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("scream-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&args.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scream-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print_json(&report);
    } else {
        print_text(&report);
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
