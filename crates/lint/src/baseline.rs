//! The committed P1 baseline: per-file counts of unallowed panic sites.
//!
//! The gate ratchets down, never up: a file may have at most as many
//! unallowed `unwrap`/`expect`/`panic!` sites as the committed count. New
//! sites fail the lint; removing sites and re-running `--write-baseline`
//! shrinks the committed numbers.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Load a baseline file. A missing file is an empty baseline.
pub fn load(path: &Path) -> io::Result<BTreeMap<String, usize>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    };
    let mut counts = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let count = parts.next().and_then(|c| c.parse::<usize>().ok());
        let file = parts.next().map(str::trim);
        match (count, file) {
            (Some(c), Some(f)) if !f.is_empty() => {
                counts.insert(f.to_string(), c);
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}:{}: expected `<count> <path>`, got `{line}`",
                        path.display(),
                        lineno + 1
                    ),
                ));
            }
        }
    }
    Ok(counts)
}

/// Write the baseline, sorted by path, dropping zero-count entries.
pub fn save(path: &Path, counts: &BTreeMap<String, usize>) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(
        "# scream-lint P1 baseline: per-file counts of unallowed panic sites\n\
         # (unwrap/expect/panic!/unreachable! in non-test library code).\n\
         # The gate fails when a file exceeds its count. Regenerate with\n\
         # `cargo run -p scream-lint -- --write-baseline` after removing sites;\n\
         # the total must only ever shrink.\n",
    );
    for (file, count) in counts {
        if *count > 0 {
            out.push_str(&format!("{count} {file}\n"));
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_counts() {
        let dir = std::env::temp_dir().join("scream_lint_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p1.txt");
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/lib.rs".to_string(), 3usize);
        counts.insert("crates/b/src/x.rs".to_string(), 1usize);
        counts.insert("crates/c/src/zero.rs".to_string(), 0usize);
        save(&path, &counts).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.get("crates/a/src/lib.rs"), Some(&3));
        assert_eq!(loaded.get("crates/b/src/x.rs"), Some(&1));
        assert_eq!(loaded.get("crates/c/src/zero.rs"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let path = Path::new("/nonexistent/scream-lint-baseline.txt");
        assert!(load(path).unwrap().is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        let dir = std::env::temp_dir().join("scream_lint_baseline_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "not-a-count crates/a/src/lib.rs\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
