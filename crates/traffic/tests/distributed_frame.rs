//! End-to-end: a schedule computed by the distributed runtime is fed
//! straight into the traffic engine via `DistributedRun::frame_service`,
//! and the packet-level stability behaviour matches the analytic
//! offered-load-vs-share verdict on both sides of the knee.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scream_core::{DistributedScheduler, ProtocolConfig};
use scream_netsim::{PropagationModel, RadioEnvironment};
use scream_topology::{DemandConfig, DemandVector, GridDeployment, LinkDemands, RoutingForest};
use scream_traffic::{FlowSet, TrafficConfig, TrafficEngine};

struct Instance {
    forest: RoutingForest,
    demands: DemandVector,
    link_demands: LinkDemands,
    env: RadioEnvironment,
}

fn grid_instance(seed: u64) -> Instance {
    let d = GridDeployment::new(4, 4, 150.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&d);
    let graph = env.communication_graph();
    let gws = d.corner_nodes();
    let forest = RoutingForest::shortest_path(&graph, &gws, seed).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let demands = DemandVector::generate(d.len(), DemandConfig::PAPER, &gws, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();
    Instance {
        forest,
        demands,
        link_demands,
        env,
    }
}

/// Flows at load factor `rho` relative to the frame: each node injects
/// `rho * demand(v) / frame_slots` packets per slot, so every link's offered
/// load is exactly `rho` times its per-frame service share (the schedule
/// allocates `aggregate_demand(e)` slots per frame to link `e`).
fn flows_at_load(instance: &Instance, rho: f64, frame_slots: u64) -> FlowSet {
    FlowSet::along_forest(
        &instance.forest,
        &instance.demands,
        rho / frame_slots as f64,
    )
}

#[test]
fn distributed_fdd_frame_carries_load_below_the_knee_and_saturates_above() {
    let instance = grid_instance(1);
    let config = ProtocolConfig::paper_default()
        .with_scream_slots(instance.env.interference_diameter().max(1));
    let run = DistributedScheduler::fdd()
        .with_config(config)
        .run(&instance.env, &instance.link_demands)
        .unwrap();
    let frame = run.frame_service();
    assert_eq!(frame.frame_slots() as usize, run.schedule.length());

    // Below the knee: every link at 60% utilization. The load is carried and
    // the queues stay bounded.
    let below = TrafficEngine::new(
        frame.clone(),
        flows_at_load(&instance, 0.6, frame.frame_slots()),
        TrafficConfig::new(400),
    )
    .unwrap()
    .run();
    assert!(below.verdict.is_stable());
    for load in &below.link_loads {
        assert!(
            (load.utilization() - 0.6).abs() < 1e-9,
            "every link sits at exactly rho: {load:?}"
        );
    }
    assert!(below.sustained_throughput_pct > 98.0, "{below}");

    // Above the knee: 140% utilization. The verdict flips, throughput
    // saturates and the backlog scales with the horizon.
    let above_engine = TrafficEngine::new(
        frame.clone(),
        flows_at_load(&instance, 1.4, frame.frame_slots()),
        TrafficConfig::new(400),
    )
    .unwrap();
    let above = above_engine.run();
    assert!(!above.verdict.is_stable());
    assert!(above.sustained_throughput_pct < 90.0, "{above}");
    assert!(above.final_backlog > below.final_backlog);

    // Determinism across reruns of the same engine.
    assert_eq!(above, above_engine.run());
}

#[test]
fn pdd_frames_drive_the_engine_too() {
    // PDD schedules are longer than FDD's, so at the same absolute per-node
    // rates the PDD frame is the first to saturate — the knee ordering the
    // delay_vs_load figure measures.
    let instance = grid_instance(3);
    let config = ProtocolConfig::paper_default()
        .with_scream_slots(instance.env.interference_diameter().max(1));
    let fdd = DistributedScheduler::fdd()
        .with_config(config)
        .run(&instance.env, &instance.link_demands)
        .unwrap();
    let pdd = DistributedScheduler::pdd(0.2)
        .unwrap()
        .with_config(config)
        .run(&instance.env, &instance.link_demands)
        .unwrap();
    assert!(pdd.schedule.length() >= fdd.schedule.length());

    // Rates sized to 95% of the FDD frame's capacity.
    let flows = flows_at_load(&instance, 0.95, fdd.frame_service().frame_slots());
    let fdd_report =
        TrafficEngine::new(fdd.frame_service(), flows.clone(), TrafficConfig::new(200))
            .unwrap()
            .run();
    let pdd_report = TrafficEngine::new(pdd.frame_service(), flows, TrafficConfig::new(200))
        .unwrap()
        .run();
    assert!(fdd_report.verdict.is_stable());
    // On the PDD frame the same absolute rates hit utilization
    // 0.95 · L_pdd / L_fdd on every link; it overloads iff that exceeds 1.
    let pdd_utilization = 0.95 * pdd.schedule.length() as f64 / fdd.schedule.length() as f64;
    assert_eq!(pdd_report.verdict.is_stable(), pdd_utilization < 1.0);
    if !pdd_report.verdict.is_stable() {
        assert!(pdd_report.sustained_throughput_pct <= fdd_report.sustained_throughput_pct);
    }
}
