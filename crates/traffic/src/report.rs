//! The measurement side of a traffic run: throughput, delay percentiles,
//! backlog and the stability verdict.

use serde::Serialize;

use scream_netsim::SimTime;
use scream_topology::Link;

/// End-to-end packet delay statistics, in slot-denominated time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct DelayStats {
    /// Number of delivered packets the statistics are over.
    pub count: u64,
    /// Mean end-to-end delay in slots.
    pub mean_slots: f64,
    /// Median (50th percentile) delay in slots.
    pub p50_slots: f64,
    /// 95th-percentile delay in slots.
    pub p95_slots: f64,
    /// 99th-percentile delay in slots.
    pub p99_slots: f64,
    /// Maximum observed delay in slots.
    pub max_slots: f64,
}

impl DelayStats {
    /// Computes the statistics from raw per-packet delays (slots). The input
    /// order does not matter; it is sorted internally.
    pub(crate) fn from_delays(mut delays: Vec<f64>) -> Self {
        // A total outage delivers nothing: the delay block is all zeros
        // (`count == 0`), never a panic.
        if delays.is_empty() {
            return Self::default();
        }
        delays.sort_by(f64::total_cmp);
        let count = delays.len() as u64;
        let sum: f64 = delays.iter().sum();
        let pct = |p: f64| {
            let idx = ((p / 100.0 * count as f64).ceil() as usize).clamp(1, delays.len());
            delays[idx - 1]
        };
        Self {
            count,
            mean_slots: sum / count as f64,
            p50_slots: pct(50.0),
            p95_slots: pct(95.0),
            p99_slots: pct(99.0),
            max_slots: delays[delays.len() - 1],
        }
    }

    /// The mean delay converted to wall-clock time for a given slot duration.
    pub fn mean_time(&self, slot_duration: SimTime) -> SimTime {
        SimTime::from_secs_f64(self.mean_slots * slot_duration.as_secs_f64())
    }
}

/// Offered load vs. service capacity of one link under a flow set and frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LinkLoad {
    /// The link.
    pub link: Link,
    /// Long-run mean packets per slot offered to the link by the flows.
    pub offered_per_slot: f64,
    /// Fraction of frame slots serving the link (its service capacity in
    /// packets per slot).
    pub service_share: f64,
}

impl LinkLoad {
    /// `offered / share` — below 1 the link's queue is stable, at or above 1
    /// it grows without bound. Infinite when the frame never serves a loaded
    /// link.
    pub fn utilization(&self) -> f64 {
        if self.service_share <= 0.0 {
            if self.offered_per_slot > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.offered_per_slot / self.service_share
        }
    }

    /// Whether the link's offered load is strictly below its service share.
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }
}

/// The analytic stability verdict of a (flow set, frame) pairing: every
/// link's offered load strictly below its per-frame service share, or not.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum StabilityVerdict {
    /// All links have offered load strictly below their service share; the
    /// queues are positive recurrent and throughput sustains the offered
    /// load.
    Stable,
    /// At least one link is offered at or above its service share; its queue
    /// — and the delay through it — grow with the simulated horizon.
    Overloaded {
        /// The saturated links (utilization ≥ 1), in route order of first
        /// appearance.
        bottlenecks: Vec<LinkLoad>,
    },
}

impl StabilityVerdict {
    /// Whether the verdict is [`Stable`](Self::Stable).
    pub fn is_stable(&self) -> bool {
        matches!(self, Self::Stable)
    }
}

/// The result of one [`TrafficEngine`](crate::TrafficEngine) run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficReport {
    /// Slots per frame repetition (the schedule length).
    pub frame_slots: u64,
    /// Simulated horizon in slots.
    pub horizon_slots: u64,
    /// Number of flows driven.
    pub flow_count: usize,
    /// Aggregate long-run injection rate, packets per slot.
    pub offered_per_slot: f64,
    /// Packets injected within the horizon.
    pub injected: u64,
    /// Packets delivered to their destination within the horizon.
    pub delivered: u64,
    /// `delivered / horizon_slots`: the sustained aggregate throughput in
    /// packets per slot. In the stable regime this converges to
    /// [`offered_per_slot`](Self::offered_per_slot) as the horizon grows; in
    /// overload it saturates at the bottleneck capacity.
    pub sustained_throughput_per_slot: f64,
    /// `100 · delivered / injected` (100 when nothing was injected): the
    /// fraction of offered traffic the schedule actually carried.
    pub sustained_throughput_pct: f64,
    /// End-to-end delay statistics over the delivered packets.
    pub delay: DelayStats,
    /// Largest number of packets simultaneously in flight (queued anywhere)
    /// at any event instant.
    pub peak_backlog: u64,
    /// Packets still in flight when the horizon was reached
    /// (`injected - delivered`).
    pub final_backlog: u64,
    /// Per-link offered load vs. service share, for every link any flow
    /// traverses, in first-appearance order.
    pub link_loads: Vec<LinkLoad>,
    /// The analytic stability verdict (offered load vs. per-link share).
    pub verdict: StabilityVerdict,
}

impl TrafficReport {
    /// The most loaded link (by utilization), if any flow offered traffic.
    pub fn bottleneck(&self) -> Option<&LinkLoad> {
        self.link_loads
            .iter()
            .max_by(|a, b| a.utilization().total_cmp(&b.utilization()))
    }
}

impl std::fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} flows over a {}-slot frame, {} slots simulated: \
             {}/{} packets delivered ({:.1}%), delay mean {:.1} / p95 {:.1} / max {:.1} slots, \
             peak backlog {}, final backlog {}, {}",
            self.flow_count,
            self.frame_slots,
            self.horizon_slots,
            self.delivered,
            self.injected,
            self.sustained_throughput_pct,
            self.delay.mean_slots,
            self.delay.p95_slots,
            self.delay.max_slots,
            self.peak_backlog,
            self.final_backlog,
            match &self.verdict {
                StabilityVerdict::Stable => "stable".to_string(),
                StabilityVerdict::Overloaded { bottlenecks } => format!(
                    "OVERLOADED at {} link(s), worst {:.2}x",
                    bottlenecks.len(),
                    bottlenecks
                        .iter()
                        .map(|b| b.utilization())
                        .fold(0.0f64, f64::max)
                ),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scream_topology::NodeId;

    #[test]
    fn delay_stats_percentiles_are_order_statistics() {
        let delays: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = DelayStats::from_delays(delays);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.mean_slots, 50.5);
        assert_eq!(stats.p50_slots, 50.0);
        assert_eq!(stats.p95_slots, 95.0);
        assert_eq!(stats.p99_slots, 99.0);
        assert_eq!(stats.max_slots, 100.0);
    }

    #[test]
    fn empty_delay_stats_are_zero() {
        let stats = DelayStats::from_delays(Vec::new());
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max_slots, 0.0);
    }

    #[test]
    fn utilization_handles_unserved_links() {
        let link = Link::new(NodeId::new(1), NodeId::new(0));
        let loaded = LinkLoad {
            link,
            offered_per_slot: 0.2,
            service_share: 0.0,
        };
        assert_eq!(loaded.utilization(), f64::INFINITY);
        assert!(!loaded.is_stable());
        let ok = LinkLoad {
            link,
            offered_per_slot: 0.2,
            service_share: 0.5,
        };
        assert!((ok.utilization() - 0.4).abs() < 1e-12);
        assert!(ok.is_stable());
    }
}
