//! Traffic flows and their arrival processes.
//!
//! A [`Flow`] injects packets at a source node and carries each of them hop
//! by hop along a fixed multi-hop route (a path of links, in practice a
//! routing-forest route to a gateway). When packets arrive is governed by the
//! flow's [`ArrivalProcess`]; all processes are seeded deterministically (the
//! workspace ChaCha shim), so a traffic simulation reruns bit-identically
//! from its inputs.
//!
//! Rates are expressed in **packets per slot** — the same unit as a link's
//! per-frame service share (`service_slots / frame_slots`), which makes the
//! stability comparison (offered load vs. share) unit-free.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use scream_topology::{DemandVector, Link, NodeId, RoutingForest};

/// When a flow's packets arrive, in slot-denominated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalProcess {
    /// Constant-bit-rate arrivals: one packet every `1 / packets_per_slot`
    /// slots, exactly.
    Deterministic {
        /// Mean arrival rate in packets per slot.
        packets_per_slot: f64,
    },
    /// Poisson arrivals: exponential inter-arrival times with the given mean
    /// rate.
    Poisson {
        /// Mean arrival rate in packets per slot.
        packets_per_slot: f64,
    },
    /// Bursty on/off (interrupted Poisson) arrivals: exponentially
    /// distributed ON and OFF periods; packets arrive as a Poisson process at
    /// `packets_per_slot_on` during ON periods and not at all during OFF
    /// periods.
    OnOff {
        /// Arrival rate during ON periods, in packets per slot.
        packets_per_slot_on: f64,
        /// Mean ON-period duration in slots.
        mean_on_slots: f64,
        /// Mean OFF-period duration in slots.
        mean_off_slots: f64,
    },
}

impl ArrivalProcess {
    /// Constant-rate arrivals at `packets_per_slot`.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and strictly positive.
    pub fn deterministic(packets_per_slot: f64) -> Self {
        assert_rate(packets_per_slot);
        Self::Deterministic { packets_per_slot }
    }

    /// Poisson arrivals at mean rate `packets_per_slot`.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and strictly positive.
    pub fn poisson(packets_per_slot: f64) -> Self {
        assert_rate(packets_per_slot);
        Self::Poisson { packets_per_slot }
    }

    /// Bursty on/off arrivals.
    ///
    /// # Panics
    ///
    /// Panics unless the ON rate and both mean durations are finite and
    /// strictly positive.
    pub fn on_off(packets_per_slot_on: f64, mean_on_slots: f64, mean_off_slots: f64) -> Self {
        assert_rate(packets_per_slot_on);
        assert_rate(mean_on_slots);
        assert_rate(mean_off_slots);
        Self::OnOff {
            packets_per_slot_on,
            mean_on_slots,
            mean_off_slots,
        }
    }

    /// The long-run mean arrival rate in packets per slot (the offered load
    /// this process contributes to every link of its route).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            Self::Deterministic { packets_per_slot } | Self::Poisson { packets_per_slot } => {
                packets_per_slot
            }
            Self::OnOff {
                packets_per_slot_on,
                mean_on_slots,
                mean_off_slots,
            } => packets_per_slot_on * mean_on_slots / (mean_on_slots + mean_off_slots),
        }
    }
}

fn assert_rate(value: f64) {
    assert!(
        value.is_finite() && value > 0.0,
        "arrival parameters must be finite and positive, got {value}"
    );
}

/// Samples one flow's arrival instants, in slots, deterministically per seed.
#[derive(Debug, Clone)]
pub(crate) struct ArrivalSampler {
    process: ArrivalProcess,
    rng: ChaCha8Rng,
    /// Time of the previously emitted arrival (slots).
    now_slots: f64,
    /// For [`ArrivalProcess::OnOff`]: end of the current ON period, and start
    /// of that period (arrivals before it are impossible).
    on_window: Option<(f64, f64)>,
}

impl ArrivalSampler {
    pub(crate) fn new(process: ArrivalProcess, seed: u64) -> Self {
        Self {
            process,
            rng: ChaCha8Rng::seed_from_u64(seed),
            now_slots: 0.0,
            on_window: None,
        }
    }

    /// Draws `Exp(1/mean)`-distributed durations (mean `mean` slots).
    fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
        // gen_range(0.0..1.0) excludes 1.0, so 1 - u is never 0.
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() * mean
    }

    /// The next arrival instant in slots (strictly increasing).
    pub(crate) fn next_arrival_slots(&mut self) -> f64 {
        let next = match self.process {
            ArrivalProcess::Deterministic { packets_per_slot } => {
                self.now_slots + 1.0 / packets_per_slot
            }
            ArrivalProcess::Poisson { packets_per_slot } => {
                self.now_slots + Self::exponential(&mut self.rng, 1.0 / packets_per_slot)
            }
            ArrivalProcess::OnOff {
                packets_per_slot_on,
                mean_on_slots,
                mean_off_slots,
            } => {
                // Accumulate exponential inter-arrival time in ON-time only,
                // hopping over OFF periods as needed.
                let (mut on_start, mut on_end) = match self.on_window {
                    Some(w) => w,
                    // The process starts at the beginning of an ON period.
                    None => (0.0, Self::exponential(&mut self.rng, mean_on_slots)),
                };
                let mut t = self.now_slots.max(on_start);
                let mut remaining = Self::exponential(&mut self.rng, 1.0 / packets_per_slot_on);
                while t + remaining >= on_end {
                    remaining -= on_end - t;
                    on_start = on_end + Self::exponential(&mut self.rng, mean_off_slots);
                    on_end = on_start + Self::exponential(&mut self.rng, mean_on_slots);
                    t = on_start;
                }
                self.on_window = Some((on_start, on_end));
                t + remaining
            }
        };
        self.now_slots = next;
        next
    }
}

/// One traffic flow: packets created at `source` traverse `route` link by
/// link (head to tail) and exit the network after the last link.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Flow {
    /// The node generating the packets (the head of the first route link).
    pub source: NodeId,
    /// The multi-hop route, in traversal order; each link's tail is the next
    /// link's head, and the last tail is the destination (a gateway, for
    /// forest routes).
    pub route: Vec<Link>,
    /// The flow's arrival process.
    pub arrival: ArrivalProcess,
}

impl Flow {
    /// Creates a flow after validating the route: it must be non-empty,
    /// start at `source` and be contiguous (each link's tail is the next
    /// link's head).
    ///
    /// # Panics
    ///
    /// Panics if the route is empty or broken.
    pub fn new(source: NodeId, route: Vec<Link>, arrival: ArrivalProcess) -> Self {
        assert!(!route.is_empty(), "a flow needs at least one route link");
        assert_eq!(route[0].head, source, "route must start at the source");
        for pair in route.windows(2) {
            assert_eq!(
                pair[0].tail, pair[1].head,
                "route is not contiguous at {} -> {}",
                pair[0], pair[1]
            );
        }
        Self {
            source,
            route,
            arrival,
        }
    }

    /// The destination node (the tail of the last route link).
    pub fn destination(&self) -> NodeId {
        self.route.last().expect("routes are non-empty").tail
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.route.len()
    }
}

/// A set of flows driven together through one [`TrafficEngine`]
/// (crate::TrafficEngine) run.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// Wraps an explicit flow list.
    pub fn new(flows: Vec<Flow>) -> Self {
        Self { flows }
    }

    /// One flow per non-gateway node with positive demand, routed along the
    /// forest to its gateway, with per-node rate `demand(v) ·
    /// packets_per_slot_per_demand_unit` produced by `make` (which receives
    /// the node and its computed rate).
    ///
    /// This is the paper's traffic pattern: the per-node demands that the
    /// schedulers satisfied with `demand(e)` slots per frame become sustained
    /// packet streams, so a frame of length `F` built by GreedyPhysical/FDD
    /// serves link `e` for exactly `aggregate_demand(e) / F` of the time —
    /// offered load scales against that share.
    pub fn along_forest_with(
        forest: &RoutingForest,
        demands: &DemandVector,
        packets_per_slot_per_demand_unit: f64,
        mut make: impl FnMut(NodeId, f64) -> ArrivalProcess,
    ) -> Self {
        let flows = forest
            .flow_routes()
            .filter(|(node, _)| demands.demand(*node) > 0)
            .map(|(node, route)| {
                let rate = demands.demand(node) as f64 * packets_per_slot_per_demand_unit;
                Flow::new(node, route, make(node, rate))
            })
            .collect();
        Self { flows }
    }

    /// [`along_forest_with`](Self::along_forest_with) with deterministic
    /// (constant-rate) arrivals — the baseline load pattern the stability
    /// tests pin.
    pub fn along_forest(
        forest: &RoutingForest,
        demands: &DemandVector,
        packets_per_slot_per_demand_unit: f64,
    ) -> Self {
        Self::along_forest_with(forest, demands, packets_per_slot_per_demand_unit, |_, r| {
            ArrivalProcess::deterministic(r)
        })
    }

    /// One single-hop flow per link — the pattern for arbitrary link sets
    /// like the heavy-demand bench instance, where every link is its own
    /// traffic sink.
    pub fn single_hop(link_arrivals: impl IntoIterator<Item = (Link, ArrivalProcess)>) -> Self {
        let flows = link_arrivals
            .into_iter()
            .map(|(link, arrival)| Flow::new(link.head, vec![link], arrival))
            .collect();
        Self { flows }
    }

    /// The flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the set carries no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Long-run mean packets per slot offered to `link`: the sum of mean
    /// rates of every flow whose route traverses it.
    pub fn offered_on(&self, link: Link) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.route.contains(&link))
            .map(|f| f.arrival.mean_rate())
            .sum()
    }

    /// Aggregate injection rate over all flows, in packets per slot.
    pub fn total_offered(&self) -> f64 {
        self.flows.iter().map(|f| f.arrival.mean_rate()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn mean_rates_cover_all_processes() {
        assert_eq!(ArrivalProcess::deterministic(0.25).mean_rate(), 0.25);
        assert_eq!(ArrivalProcess::poisson(0.5).mean_rate(), 0.5);
        // 40% duty cycle at rate 1.0.
        let on_off = ArrivalProcess::on_off(1.0, 40.0, 60.0);
        assert!((on_off.mean_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rates_are_rejected() {
        let _ = ArrivalProcess::deterministic(0.0);
    }

    #[test]
    fn deterministic_sampler_is_an_exact_lattice() {
        let mut s = ArrivalSampler::new(ArrivalProcess::deterministic(0.5), 1);
        assert_eq!(s.next_arrival_slots(), 2.0);
        assert_eq!(s.next_arrival_slots(), 4.0);
        assert_eq!(s.next_arrival_slots(), 6.0);
    }

    #[test]
    fn random_samplers_are_increasing_and_seed_deterministic() {
        for process in [
            ArrivalProcess::poisson(0.3),
            ArrivalProcess::on_off(1.0, 5.0, 5.0),
        ] {
            let mut a = ArrivalSampler::new(process, 9);
            let mut b = ArrivalSampler::new(process, 9);
            let mut c = ArrivalSampler::new(process, 10);
            let mut last = 0.0;
            let mut any_differs = false;
            for _ in 0..200 {
                let t = a.next_arrival_slots();
                assert!(t > last, "arrival times must strictly increase");
                last = t;
                assert_eq!(t, b.next_arrival_slots(), "same seed, same stream");
                if t != c.next_arrival_slots() {
                    any_differs = true;
                }
            }
            assert!(any_differs, "different seeds should diverge");
        }
    }

    #[test]
    fn poisson_mean_rate_is_statistically_plausible() {
        let mut s = ArrivalSampler::new(ArrivalProcess::poisson(0.5), 42);
        let mut t = 0.0;
        for _ in 0..4000 {
            t = s.next_arrival_slots();
        }
        let rate = 4000.0 / t;
        assert!((0.45..0.55).contains(&rate), "measured rate {rate}");
    }

    #[test]
    fn on_off_long_run_rate_matches_duty_cycle() {
        let process = ArrivalProcess::on_off(2.0, 30.0, 70.0);
        let mut s = ArrivalSampler::new(process, 7);
        let mut t = 0.0;
        let n = 6000;
        for _ in 0..n {
            t = s.next_arrival_slots();
        }
        let rate = n as f64 / t;
        let expected = process.mean_rate();
        assert!(
            (rate - expected).abs() < 0.15 * expected,
            "measured {rate}, expected {expected}"
        );
    }

    #[test]
    fn flow_validates_route_contiguity() {
        let f = Flow::new(
            NodeId::new(3),
            vec![link(3, 2), link(2, 0)],
            ArrivalProcess::deterministic(0.1),
        );
        assert_eq!(f.destination(), NodeId::new(0));
        assert_eq!(f.hop_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn broken_routes_are_rejected() {
        let _ = Flow::new(
            NodeId::new(3),
            vec![link(3, 2), link(1, 0)],
            ArrivalProcess::deterministic(0.1),
        );
    }

    #[test]
    fn offered_load_sums_flows_through_a_link() {
        let set = FlowSet::new(vec![
            Flow::new(
                NodeId::new(3),
                vec![link(3, 2), link(2, 0)],
                ArrivalProcess::deterministic(0.1),
            ),
            Flow::new(
                NodeId::new(2),
                vec![link(2, 0)],
                ArrivalProcess::deterministic(0.25),
            ),
        ]);
        assert_eq!(set.len(), 2);
        assert!((set.offered_on(link(2, 0)) - 0.35).abs() < 1e-12);
        assert!((set.offered_on(link(3, 2)) - 0.1).abs() < 1e-12);
        assert_eq!(set.offered_on(link(5, 4)), 0.0);
        assert!((set.total_offered() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn single_hop_builds_one_flow_per_link() {
        let set = FlowSet::single_hop(vec![
            (link(1, 0), ArrivalProcess::deterministic(0.2)),
            (link(3, 2), ArrivalProcess::poisson(0.1)),
        ]);
        assert_eq!(set.len(), 2);
        assert!(set.flows().iter().all(|f| f.hop_count() == 1));
        assert_eq!(set.flows()[0].source, NodeId::new(1));
    }
}
