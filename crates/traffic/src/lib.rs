//! Packet-level traffic simulation over SCREAM TDMA schedules.
//!
//! The rest of the workspace judges a schedule by its **length**; this crate
//! judges it by what it was built for — **carrying traffic to the
//! gateways**. A [`TrafficEngine`] takes any run-length [`Schedule`]
//! (centralized GreedyPhysical, distributed FDD/PDD/AFDD, the serialized
//! baseline — anything), treats it as an endlessly repeating TDMA frame,
//! and drives multi-hop packet [flows](FlowSet) through per-link FIFO
//! queues on the deterministic discrete-event engine of
//! `scream_netsim::des`:
//!
//! * **flows** follow routing-forest routes (one per mesh node, ending at
//!   its gateway) or arbitrary explicit routes, with deterministic, Poisson
//!   or bursty on/off [arrival processes](ArrivalProcess), all seeded;
//! * **service** comes from the frame's `(channel, link)` slot entries,
//!   indexed per link by [`FrameService`] straight from the run-length
//!   representation — a million-slot heavy-demand frame is indexed in
//!   pattern time, never slot time;
//! * the [`TrafficReport`] measures sustained throughput, end-to-end delay
//!   percentiles, peak/final backlog, per-link offered-load-vs-share
//!   [utilization](LinkLoad) and the analytic [stability
//!   verdict](StabilityVerdict) — offered load strictly below every link's
//!   per-frame service share sustains the load; anything else saturates.
//!
//! # Example: the stability knee on a two-slot frame
//!
//! ```
//! use scream_scheduling::Schedule;
//! use scream_topology::{Link, NodeId};
//! use scream_traffic::{ArrivalProcess, FlowSet, TrafficConfig, TrafficEngine};
//!
//! let link = Link::new(NodeId::new(1), NodeId::new(0));
//! // The frame serves the link in 1 of its 2 slots: capacity 0.5 pkt/slot.
//! let frame = Schedule::from_slots(vec![vec![link], vec![]]);
//!
//! let run = |rate: f64| {
//!     let flows = FlowSet::single_hop(vec![(link, ArrivalProcess::deterministic(rate))]);
//!     TrafficEngine::on_schedule(&frame, flows, TrafficConfig::new(200))
//!         .unwrap()
//!         .run()
//! };
//! let below = run(0.4); // 80% utilization: stable, load carried
//! let above = run(0.6); // 120% utilization: queues grow without bound
//! assert!(below.verdict.is_stable() && below.sustained_throughput_pct > 99.0);
//! assert!(!above.verdict.is_stable() && above.final_backlog > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod flow;
pub mod report;
pub mod session;

pub use engine::{TrafficConfig, TrafficEngine, TrafficError};
pub use flow::{ArrivalProcess, Flow, FlowSet};
pub use report::{DelayStats, LinkLoad, StabilityVerdict, TrafficReport};
pub use session::{ForwardingTable, SegmentReport, SessionTotals, Source, TrafficSession};

// Re-exported so traffic consumers can build frame indexes without also
// depending on scream-scheduling directly.
pub use scream_scheduling::{FrameService, Schedule};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::engine::{TrafficConfig, TrafficEngine, TrafficError};
    pub use crate::flow::{ArrivalProcess, Flow, FlowSet};
    pub use crate::report::{DelayStats, LinkLoad, StabilityVerdict, TrafficReport};
    pub use crate::session::{
        ForwardingTable, SegmentReport, SessionTotals, Source, TrafficSession,
    };
    pub use scream_scheduling::FrameService;
}
