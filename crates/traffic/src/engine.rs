//! The packet-level traffic engine.
//!
//! [`TrafficEngine`] drives a [`FlowSet`] over a repeating TDMA frame (any
//! run-length [`Schedule`], indexed by [`FrameService`] so million-slot
//! frames cost nothing per slot) on the deterministic discrete-event engine
//! of `scream_netsim::des`. Each link runs a FIFO queue served one packet
//! per scheduled `(channel, link)` slot entry; packets hop along their
//! flow's route and are measured end to end.
//!
//! # Event structure
//!
//! The simulation is event-driven, never slot-driven: the only events are
//! packet **arrivals** (drawn from each flow's [`ArrivalProcess`]) and
//! per-hop **departures**. A departure slot is assigned the moment a packet
//! reaches the head-of-line position context allows — because service is
//! FIFO and each scheduled slot serves a fixed number of packets, every
//! packet's departure slot is determined when it joins the queue:
//!
//! > `departure(p) = next scheduled slot ≥ max(packet ready slot,
//! >  first slot the server is free after the previous packet)`
//!
//! which [`FrameService::next_service_slot`] answers in O(log #windows).
//! The cost of a run is therefore O(packet-hops · log #windows + events),
//! independent of the frame's slot count — an idle million-slot frame is
//! exactly as cheap as an idle ten-slot frame.
//!
//! Determinism: arrivals are seeded per flow (ChaCha), the event queue
//! breaks timestamp ties in scheduling order (the contract `des.rs` pins),
//! and no wall-clock value enters the simulation, so the same inputs
//! reproduce the same [`TrafficReport`] byte for byte.

use std::collections::{BTreeMap, HashMap, VecDeque};

use scream_netsim::{EventQueue, SimTime};
use scream_scheduling::{FrameService, Schedule};
use scream_topology::Link;

use crate::flow::{ArrivalSampler, FlowSet};
use crate::report::{DelayStats, LinkLoad, StabilityVerdict, TrafficReport};

/// Configuration of a traffic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// How many frame repetitions to simulate.
    pub horizon_frames: u64,
    /// Seed for the arrival processes (each flow derives its own stream).
    pub seed: u64,
    /// Wall-clock duration of one slot (only used to anchor [`SimTime`]
    /// event timestamps; all report metrics are slot-denominated).
    pub slot_duration: SimTime,
}

impl TrafficConfig {
    /// A configuration simulating `horizon_frames` frame repetitions with
    /// seed 0 and a 1 ms slot.
    pub fn new(horizon_frames: u64) -> Self {
        Self {
            horizon_frames,
            seed: 0,
            slot_duration: SimTime::from_millis(1),
        }
    }

    /// Overrides the arrival seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the slot duration.
    pub fn with_slot_duration(mut self, slot_duration: SimTime) -> Self {
        self.slot_duration = slot_duration;
        self
    }
}

/// Why a [`TrafficEngine`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficError {
    /// The frame has no slots, so nothing can ever be served.
    EmptyFrame,
    /// The flow set is empty, so there is nothing to simulate.
    NoFlows,
    /// The horizon is zero frames.
    ZeroHorizon,
    /// The slot duration is zero.
    ZeroSlotDuration,
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyFrame => write!(f, "the TDMA frame has no slots"),
            Self::NoFlows => write!(f, "the flow set is empty"),
            Self::ZeroHorizon => write!(f, "the horizon must be at least one frame"),
            Self::ZeroSlotDuration => write!(f, "the slot duration must be positive"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// A packet in flight: which flow it belongs to, which hop of the route it
/// is queued at, and when it was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    flow: u32,
    hop: u32,
    created: SimTime,
}

/// The DES event payload: a flow's next packet arrival, or the departure of
/// the head-of-line packet at a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrafficEvent {
    Arrival { flow: u32 },
    Departure { link: u32 },
}

/// Per-link FIFO queue plus the TDMA server cursor (the last slot departures
/// were assigned to, and how much of its capacity is used).
#[derive(Debug, Default)]
struct LinkQueue {
    queue: VecDeque<Packet>,
    /// `(slot, used, capacity)` of the most recently assigned service slot.
    cursor: Option<(u64, u32, u32)>,
}

/// The packet-level traffic engine. See the module docs for the model.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficEngine {
    frame: FrameService,
    flows: FlowSet,
    config: TrafficConfig,
}

impl TrafficEngine {
    /// Creates an engine serving `flows` with the repeating frame indexed by
    /// `frame`.
    ///
    /// # Errors
    ///
    /// Rejects empty frames, empty flow sets and degenerate configurations.
    pub fn new(
        frame: FrameService,
        flows: FlowSet,
        config: TrafficConfig,
    ) -> Result<Self, TrafficError> {
        if frame.is_empty() {
            return Err(TrafficError::EmptyFrame);
        }
        if flows.is_empty() {
            return Err(TrafficError::NoFlows);
        }
        if config.horizon_frames == 0 {
            return Err(TrafficError::ZeroHorizon);
        }
        if config.slot_duration == SimTime::ZERO {
            return Err(TrafficError::ZeroSlotDuration);
        }
        Ok(Self {
            frame,
            flows,
            config,
        })
    }

    /// [`new`](Self::new) directly from a schedule (the frame index is built
    /// with [`FrameService::from_schedule`]).
    pub fn on_schedule(
        schedule: &Schedule,
        flows: FlowSet,
        config: TrafficConfig,
    ) -> Result<Self, TrafficError> {
        Self::new(FrameService::from_schedule(schedule), flows, config)
    }

    /// The frame index the engine serves from.
    pub fn frame(&self) -> &FrameService {
        &self.frame
    }

    /// The flows the engine drives.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// The per-link offered load vs. service share, and the resulting
    /// analytic stability verdict — computable without simulating.
    pub fn link_loads(&self) -> (Vec<LinkLoad>, StabilityVerdict) {
        // One pass over the flows with an index map: a flow contributes its
        // rate once per *distinct* link on its route, and links keep
        // first-appearance order — the same loads `offered_on` per link
        // would produce, at O(total hops) instead of O(links²). BTreeMap so
        // no hash-ordered container feeds the verdict (D1.iter).
        let mut index: BTreeMap<Link, usize> = BTreeMap::new();
        let mut loads: Vec<LinkLoad> = Vec::new();
        for flow in self.flows.flows() {
            let rate = flow.arrival.mean_rate();
            for (hop, &link) in flow.route.iter().enumerate() {
                if flow.route[..hop].contains(&link) {
                    continue;
                }
                let i = *index.entry(link).or_insert_with(|| {
                    loads.push(LinkLoad {
                        link,
                        offered_per_slot: 0.0,
                        service_share: self.frame.service_share(link),
                    });
                    loads.len() - 1
                });
                loads[i].offered_per_slot += rate;
            }
        }
        let bottlenecks: Vec<LinkLoad> = loads.iter().filter(|l| !l.is_stable()).copied().collect();
        let verdict = if bottlenecks.is_empty() {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Overloaded { bottlenecks }
        };
        (loads, verdict)
    }

    /// Runs the simulation over `horizon_frames` frame repetitions and
    /// returns the measurements. Deterministic: rerunning the same engine
    /// yields an identical report.
    pub fn run(&self) -> TrafficReport {
        Simulation::new(self).run()
    }
}

/// One simulation run's mutable state.
struct Simulation<'a> {
    engine: &'a TrafficEngine,
    slot_ns: u64,
    horizon: SimTime,
    samplers: Vec<ArrivalSampler>,
    /// Link index per flow hop: `hop_links[f][h]` indexes into `queues`.
    hop_links: Vec<Vec<u32>>,
    links: Vec<Link>,
    queues: Vec<LinkQueue>,
    injected: u64,
    delivered: u64,
    in_flight: u64,
    peak_backlog: u64,
    delays_slots: Vec<f64>,
}

impl<'a> Simulation<'a> {
    fn new(engine: &'a TrafficEngine) -> Self {
        let slot_ns = engine.config.slot_duration.as_nanos();
        let horizon_slots = engine.config.horizon_frames * engine.frame.frame_slots();
        let mut links: Vec<Link> = Vec::new();
        let mut link_index: HashMap<Link, u32> = HashMap::new();
        let mut hop_links = Vec::with_capacity(engine.flows.len());
        for flow in engine.flows.flows() {
            let hops = flow
                .route
                .iter()
                .map(|&link| {
                    *link_index.entry(link).or_insert_with(|| {
                        links.push(link);
                        (links.len() - 1) as u32
                    })
                })
                .collect();
            hop_links.push(hops);
        }
        let samplers = engine
            .flows
            .flows()
            .iter()
            .enumerate()
            .map(|(i, flow)| {
                let seed = engine
                    .config
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                ArrivalSampler::new(flow.arrival, seed)
            })
            .collect();
        let queues = links.iter().map(|_| LinkQueue::default()).collect();
        Self {
            engine,
            slot_ns,
            horizon: engine.config.slot_duration.saturating_mul(horizon_slots),
            samplers,
            hop_links,
            links,
            queues,
            injected: 0,
            delivered: 0,
            in_flight: 0,
            peak_backlog: 0,
            delays_slots: Vec::new(),
        }
    }

    /// The first slot whose service a packet becoming ready at `time` can
    /// use: the slot starting at or after `time`.
    fn ready_slot(&self, time: SimTime) -> u64 {
        time.as_nanos().div_ceil(self.slot_ns)
    }

    /// Assigns the departure slot for a packet joining `link`'s FIFO queue
    /// with the given ready slot, honoring per-slot service capacity.
    /// Returns `None` when the frame never serves the link (the packet is
    /// parked forever).
    fn assign_departure(&mut self, link_idx: u32, ready: u64) -> Option<u64> {
        let link = self.links[link_idx as usize];
        let cursor = &mut self.queues[link_idx as usize].cursor;
        if let Some((slot, used, capacity)) = *cursor {
            if ready <= slot {
                if used < capacity {
                    *cursor = Some((slot, used + 1, capacity));
                    return Some(slot);
                }
                let next = self.engine.frame.next_service_slot(link, slot + 1)?;
                self.queues[link_idx as usize].cursor = Some((next.slot, 1, next.capacity));
                return Some(next.slot);
            }
        }
        let next = self.engine.frame.next_service_slot(link, ready)?;
        self.queues[link_idx as usize].cursor = Some((next.slot, 1, next.capacity));
        Some(next.slot)
    }

    /// Enqueues `packet` at `link`, assigning its departure and scheduling
    /// the departure event (at the end of the assigned slot).
    fn enqueue(
        &mut self,
        queue: &mut EventQueue<TrafficEvent>,
        link_idx: u32,
        packet: Packet,
        ready: u64,
    ) {
        let departure = self.assign_departure(link_idx, ready);
        self.queues[link_idx as usize].queue.push_back(packet);
        if let Some(slot) = departure {
            let at = self.engine.config.slot_duration.saturating_mul(slot + 1);
            queue.schedule(at, TrafficEvent::Departure { link: link_idx });
        }
    }

    fn schedule_next_arrival(&mut self, queue: &mut EventQueue<TrafficEvent>, flow: u32) {
        let slots = self.samplers[flow as usize].next_arrival_slots();
        let at = SimTime::from_nanos((slots * self.slot_ns as f64).round() as u64);
        if at < self.horizon {
            queue.schedule(at.max(queue.now()), TrafficEvent::Arrival { flow });
        }
    }

    fn handle(&mut self, queue: &mut EventQueue<TrafficEvent>, event: TrafficEvent, now: SimTime) {
        match event {
            TrafficEvent::Arrival { flow } => {
                self.injected += 1;
                self.in_flight += 1;
                self.peak_backlog = self.peak_backlog.max(self.in_flight);
                let packet = Packet {
                    flow,
                    hop: 0,
                    created: now,
                };
                let first = self.hop_links[flow as usize][0];
                self.enqueue(queue, first, packet, self.ready_slot(now));
                self.schedule_next_arrival(queue, flow);
            }
            TrafficEvent::Departure { link } => {
                let mut packet = self.queues[link as usize]
                    .queue
                    .pop_front()
                    .expect("departure events match queued packets one to one");
                packet.hop += 1;
                let route = &self.hop_links[packet.flow as usize];
                if (packet.hop as usize) < route.len() {
                    let next = route[packet.hop as usize];
                    self.enqueue(queue, next, packet, self.ready_slot(now));
                } else {
                    self.delivered += 1;
                    self.in_flight -= 1;
                    let delay = now.saturating_sub(packet.created);
                    self.delays_slots
                        .push(delay.as_nanos() as f64 / self.slot_ns as f64);
                }
            }
        }
    }

    fn run(mut self) -> TrafficReport {
        let mut queue: EventQueue<TrafficEvent> = EventQueue::new();
        for flow in 0..self.engine.flows.len() as u32 {
            self.schedule_next_arrival(&mut queue, flow);
        }
        let horizon = self.horizon;
        queue.run_until(horizon, |q, ev| self.handle(q, ev.event, ev.time));
        let horizon_slots = self.engine.config.horizon_frames * self.engine.frame.frame_slots();
        let (link_loads, verdict) = self.engine.link_loads();
        let delay = DelayStats::from_delays(std::mem::take(&mut self.delays_slots));
        TrafficReport {
            frame_slots: self.engine.frame.frame_slots(),
            horizon_slots,
            flow_count: self.engine.flows.len(),
            offered_per_slot: self.engine.flows.total_offered(),
            injected: self.injected,
            delivered: self.delivered,
            sustained_throughput_per_slot: self.delivered as f64 / horizon_slots as f64,
            sustained_throughput_pct: if self.injected == 0 {
                100.0
            } else {
                100.0 * self.delivered as f64 / self.injected as f64
            },
            delay,
            peak_backlog: self.peak_backlog,
            final_backlog: self.injected - self.delivered,
            link_loads,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{ArrivalProcess, Flow, FlowSet};
    use scream_topology::NodeId;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    /// A frame serving `link` in `serve` of `total` slots.
    fn fractional_frame(l: Link, serve: u64, total: u64) -> Schedule {
        let mut s = Schedule::new();
        s.push_slot_run(vec![l], serve);
        s.push_slot_run(vec![], total - serve);
        s
    }

    fn single_hop_engine(rate: f64, serve: u64, total: u64, frames: u64) -> TrafficEngine {
        let l = link(1, 0);
        let flows = FlowSet::single_hop(vec![(l, ArrivalProcess::deterministic(rate))]);
        TrafficEngine::on_schedule(
            &fractional_frame(l, serve, total),
            flows,
            TrafficConfig::new(frames),
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_degenerate_inputs() {
        let l = link(1, 0);
        let flows = FlowSet::single_hop(vec![(l, ArrivalProcess::deterministic(0.1))]);
        let frame = fractional_frame(l, 1, 2);
        assert_eq!(
            TrafficEngine::on_schedule(&Schedule::new(), flows.clone(), TrafficConfig::new(1)),
            Err(TrafficError::EmptyFrame)
        );
        assert_eq!(
            TrafficEngine::on_schedule(&frame, FlowSet::default(), TrafficConfig::new(1)),
            Err(TrafficError::NoFlows)
        );
        assert_eq!(
            TrafficEngine::on_schedule(&frame, flows.clone(), TrafficConfig::new(0)),
            Err(TrafficError::ZeroHorizon)
        );
        assert_eq!(
            TrafficEngine::on_schedule(
                &frame,
                flows,
                TrafficConfig::new(1).with_slot_duration(SimTime::ZERO)
            ),
            Err(TrafficError::ZeroSlotDuration)
        );
    }

    #[test]
    fn uncontended_single_hop_packets_wait_one_slot() {
        // Every slot serves the link; deterministic arrivals at t = 2, 4, ...
        // slots are served in the slot they become ready in, so the
        // end-to-end delay is exactly one slot (the service time).
        let report = single_hop_engine(0.5, 1, 1, 100).run();
        assert_eq!(report.horizon_slots, 100);
        assert_eq!(report.injected, 49, "arrivals at 2, 4, ..., 98");
        assert_eq!(report.delivered, 49, "all served before the horizon");
        assert_eq!(report.final_backlog, 0);
        assert_eq!(report.peak_backlog, 1);
        assert_eq!(report.delay.count, 49);
        assert_eq!(report.delay.mean_slots, 1.0);
        assert_eq!(report.delay.max_slots, 1.0);
        assert!(report.verdict.is_stable());
        assert_eq!(report.sustained_throughput_pct, 100.0);
    }

    #[test]
    fn multi_hop_pipeline_delay_adds_per_hop_service() {
        // Frame: slot 0 serves 2->1, slot 1 serves 1->0. A packet arriving
        // at an even slot crosses both hops in consecutive slots: delay 2.
        let upstream = link(2, 1);
        let downstream = link(1, 0);
        let frame = Schedule::from_slots(vec![vec![upstream], vec![downstream]]);
        let flows = FlowSet::new(vec![Flow::new(
            NodeId::new(2),
            vec![upstream, downstream],
            ArrivalProcess::deterministic(0.25),
        )]);
        let report = TrafficEngine::on_schedule(&frame, flows, TrafficConfig::new(100))
            .unwrap()
            .run();
        assert_eq!(report.injected, 49, "arrivals at 4, 8, ..., 196");
        assert_eq!(report.delivered, 49);
        assert_eq!(report.delay.mean_slots, 2.0);
        assert_eq!(report.delay.max_slots, 2.0);
        assert_eq!(report.link_loads.len(), 2);
        assert!(report.verdict.is_stable());
    }

    #[test]
    fn below_capacity_throughput_sustains_the_offered_load() {
        // 80% utilization of a half-rate link: the queue stays bounded and
        // the carried load equals the offered load (modulo in-flight edge
        // packets).
        let report = single_hop_engine(0.4, 1, 2, 500).run();
        assert!(report.verdict.is_stable());
        let expected = report.offered_per_slot * report.horizon_slots as f64;
        assert!(report.injected as f64 >= expected - 2.0);
        assert!(report.sustained_throughput_pct > 99.0);
        assert!(
            report.final_backlog <= 2,
            "backlog {}",
            report.final_backlog
        );
        let per_slot = report.sustained_throughput_per_slot;
        assert!(
            (per_slot - report.offered_per_slot).abs() < 0.01,
            "sustained {per_slot} vs offered {}",
            report.offered_per_slot
        );
    }

    #[test]
    fn above_capacity_the_verdict_flips_and_delay_grows_with_horizon() {
        // 120% utilization: delivered saturates at the service share, the
        // backlog scales with the horizon and so does the mean delay.
        let short = single_hop_engine(0.6, 1, 2, 100).run();
        let long = single_hop_engine(0.6, 1, 2, 400).run();
        for report in [&short, &long] {
            assert!(!report.verdict.is_stable());
            let StabilityVerdict::Overloaded { bottlenecks } = &report.verdict else {
                panic!("expected overload");
            };
            assert_eq!(bottlenecks.len(), 1);
            assert!((bottlenecks[0].utilization() - 1.2).abs() < 1e-9);
            // Sustained throughput saturates at the 0.5 pkt/slot share.
            assert!((report.sustained_throughput_per_slot - 0.5).abs() < 0.02);
            assert!(report.sustained_throughput_pct < 90.0);
        }
        assert!(long.final_backlog > 3 * short.final_backlog / 2);
        assert!(
            long.delay.mean_slots > 2.0 * short.delay.mean_slots,
            "delay must grow with the horizon in overload: {} vs {}",
            long.delay.mean_slots,
            short.delay.mean_slots
        );
        assert!(long.peak_backlog >= long.final_backlog);
    }

    #[test]
    fn a_link_the_frame_never_serves_is_an_infinite_bottleneck() {
        let served = link(1, 0);
        let orphan = link(3, 2);
        let frame = fractional_frame(served, 1, 1);
        let flows = FlowSet::single_hop(vec![(orphan, ArrivalProcess::deterministic(0.25))]);
        let report = TrafficEngine::on_schedule(&frame, flows, TrafficConfig::new(20))
            .unwrap()
            .run();
        assert_eq!(report.delivered, 0);
        assert_eq!(report.final_backlog, report.injected);
        assert!(report.injected > 0);
        let StabilityVerdict::Overloaded { bottlenecks } = &report.verdict else {
            panic!("expected overload");
        };
        assert_eq!(bottlenecks[0].utilization(), f64::INFINITY);
    }

    #[test]
    fn runs_are_deterministic_for_every_arrival_process() {
        let l = link(1, 0);
        let frame = fractional_frame(l, 2, 3);
        for process in [
            ArrivalProcess::deterministic(0.3),
            ArrivalProcess::poisson(0.3),
            ArrivalProcess::on_off(1.0, 8.0, 8.0),
        ] {
            let build = || {
                TrafficEngine::on_schedule(
                    &frame,
                    FlowSet::single_hop(vec![(l, process)]),
                    TrafficConfig::new(60).with_seed(11),
                )
                .unwrap()
            };
            let a = build().run();
            let b = build().run();
            assert_eq!(a, b, "same seed must reproduce byte-identical reports");
            let other_seed = TrafficEngine::on_schedule(
                &frame,
                FlowSet::single_hop(vec![(l, process)]),
                TrafficConfig::new(60).with_seed(12),
            )
            .unwrap()
            .run();
            // Deterministic arrivals ignore the seed; the random ones use it.
            if matches!(process, ArrivalProcess::Deterministic { .. }) {
                assert_eq!(a.injected, other_seed.injected);
            } else {
                assert_ne!(a, other_seed, "different seeds should diverge");
            }
            assert!(a.injected > 0 && a.delivered > 0);
        }
    }

    #[test]
    fn poisson_load_below_capacity_is_stable_in_practice() {
        let l = link(1, 0);
        let frame = fractional_frame(l, 1, 2);
        let flows = FlowSet::single_hop(vec![(l, ArrivalProcess::poisson(0.35))]);
        let report =
            TrafficEngine::on_schedule(&frame, flows, TrafficConfig::new(2_000).with_seed(3))
                .unwrap()
                .run();
        assert!(report.verdict.is_stable());
        assert!(report.sustained_throughput_pct > 99.0);
        // M/D-ish queue at 70% utilization: delays are modest but not the
        // deterministic 2-slot floor.
        assert!(
            report.delay.p95_slots < 40.0,
            "p95 {}",
            report.delay.p95_slots
        );
        assert!(report.delay.mean_slots >= 1.0);
    }

    #[test]
    fn million_slot_frames_simulate_in_pattern_time() {
        // A frame of 1M slots serving the link in its first 100k slots: the
        // engine must index and simulate this without per-slot work.
        let l = link(1, 0);
        let frame = fractional_frame(l, 100_000, 1_000_000);
        let flows = FlowSet::single_hop(vec![(l, ArrivalProcess::deterministic(0.05))]);
        let report = TrafficEngine::on_schedule(&frame, flows, TrafficConfig::new(1))
            .unwrap()
            .run();
        assert_eq!(report.frame_slots, 1_000_000);
        assert!(report.injected > 40_000);
        // Offered 0.05 < share 0.1, but packets arriving after the service
        // prefix wait for the next frame repetition (which is beyond the
        // horizon), so the bulk of the tail stays queued: the stability
        // verdict is a long-run statement, backlog within one frame is not.
        assert!(report.verdict.is_stable());
        // 0.05 pkt/slot over the 100k-slot service prefix: ~5000 packets go
        // through within the frame; the rest queue for the next repetition.
        assert!(report.delivered >= 4_999, "the prefix is served in-frame");
    }

    #[test]
    fn shared_link_aggregates_two_flows_fifo() {
        // Two deterministic flows share one link at combined utilization 0.9;
        // both are carried and the report sums their loads.
        let l = link(1, 0);
        let frame = fractional_frame(l, 1, 1);
        let flows = FlowSet::new(vec![
            Flow::new(NodeId::new(1), vec![l], ArrivalProcess::deterministic(0.5)),
            Flow::new(NodeId::new(1), vec![l], ArrivalProcess::deterministic(0.4)),
        ]);
        let report = TrafficEngine::on_schedule(&frame, flows, TrafficConfig::new(300))
            .unwrap()
            .run();
        assert!(report.verdict.is_stable());
        assert_eq!(report.link_loads.len(), 1);
        assert!((report.link_loads[0].offered_per_slot - 0.9).abs() < 1e-12);
        assert!(report.sustained_throughput_pct > 99.0);
        assert!(report.peak_backlog <= 8);
    }
}
