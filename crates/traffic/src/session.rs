//! Resumable, fault-aware traffic simulation: the epoch-driven counterpart
//! of [`TrafficEngine`](crate::TrafficEngine).
//!
//! [`TrafficSession`] simulates the same packet model as the engine — FIFO
//! per-link queues served by a repeating TDMA frame, event-driven, seeded
//! arrivals — but in **segments**: [`advance`](TrafficSession::advance) runs
//! the clock forward a given number of slots and returns, leaving queues,
//! arrival samplers and in-flight packets intact so the caller can mutate
//! the world between segments:
//!
//! * [`fail_link`](TrafficSession::fail_link) /
//!   [`restore_link`](TrafficSession::restore_link) — a dead link stops
//!   serving; its queued packets strand until rescued or the link returns;
//! * [`swap_frame`](TrafficSession::swap_frame) — install a repaired frame
//!   mid-run (the new frame starts counting its slot 0 at the swap slot);
//! * [`set_routes`](TrafficSession::set_routes) — install a new
//!   [`ForwardingTable`]; packets already in flight follow the new table
//!   from wherever they are (hop-by-hop forwarding, not source routing);
//! * [`rescue_stranded`](TrafficSession::rescue_stranded) — re-home packets
//!   stuck on dead or no-longer-served links via the current table,
//!   dropping those with nowhere to go;
//! * [`pause_source`](TrafficSession::pause_source) /
//!   [`resume_source`](TrafficSession::resume_source) — the admission
//!   controller's lever: a paused source injects nothing, and resuming
//!   fast-forwards its arrival process past the paused interval.
//!
//! Routing is by **forwarding table** (one uplink per node, gateway sinks),
//! the hop-by-hop reading of a
//! [`RoutingForest`](scream_topology::RoutingForest) — which is what makes
//! online rerouting well-defined for packets already mid-path. With a fixed
//! frame, fixed routes and no faults, a session over one uninterrupted
//! segment reproduces the engine's aggregate measurements exactly (pinned by
//! the `session_matches_engine_*` tests), and segmentation itself is
//! transparent: departure assignments are FIFO-reconstructed from the queue
//! state at every segment start, which yields the same slots a continuous
//! run would have assigned.

use std::collections::{BTreeMap, HashMap, VecDeque};

use scream_netsim::{EventQueue, SimTime};
use scream_scheduling::FrameService;
use scream_topology::{Link, NodeId, RoutingForest};

use crate::engine::{TrafficConfig, TrafficError};
use crate::flow::{ArrivalProcess, ArrivalSampler};
use crate::report::{DelayStats, LinkLoad, StabilityVerdict};

/// Hop-by-hop routing state: each node's uplink toward its gateway, plus
/// which nodes are sinks (gateways). Built from a routing forest — including
/// a partial one, where cut-off nodes simply have no next hop.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardingTable {
    next_hop: Vec<Option<Link>>,
    sink: Vec<bool>,
}

impl ForwardingTable {
    /// Builds the table from a routing forest: every reachable non-gateway
    /// node forwards on its tree edge, gateways are sinks, and cut-off nodes
    /// (partial forests) forward nowhere.
    pub fn from_forest(forest: &RoutingForest) -> Self {
        let n = forest.node_count();
        let next_hop = (0..n as u32)
            .map(NodeId::new)
            .map(|v| forest.is_reachable(v).then(|| forest.link_of(v)).flatten())
            .collect();
        let sink = (0..n as u32)
            .map(NodeId::new)
            .map(|v| forest.is_reachable(v) && forest.is_gateway(v))
            .collect();
        Self { next_hop, sink }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.next_hop.len()
    }

    /// The uplink `node` forwards on, or `None` for sinks and cut-off nodes.
    pub fn next_hop(&self, node: NodeId) -> Option<Link> {
        self.next_hop.get(node.index()).copied().flatten()
    }

    /// Whether `node` is a delivery sink (gateway).
    pub fn is_sink(&self, node: NodeId) -> bool {
        self.sink.get(node.index()).copied().unwrap_or(false)
    }

    /// The links of `node`'s path to its sink under this table, bounded by
    /// the node count (a malformed table cannot loop forever).
    pub fn path_links(&self, node: NodeId) -> Vec<Link> {
        let mut links = Vec::new();
        let mut current = node;
        for _ in 0..self.node_count() {
            let Some(link) = self.next_hop(current) else {
                break;
            };
            links.push(link);
            current = link.tail;
            if self.is_sink(current) {
                break;
            }
        }
        links
    }
}

/// One traffic source: a node injecting packets toward its gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Source {
    /// The injecting node.
    pub node: NodeId,
    /// Its arrival process.
    pub arrival: ArrivalProcess,
}

/// A packet in a session queue.
#[derive(Debug, Clone, Copy)]
struct SessionPacket {
    created: SimTime,
}

/// Per-link FIFO queue plus the TDMA server cursor, as in the engine.
#[derive(Debug, Default)]
struct SessionQueue {
    queue: VecDeque<SessionPacket>,
    /// `(absolute slot, used, capacity)` of the last assigned service slot.
    cursor: Option<(u64, u32, u32)>,
    dead: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEvent {
    Arrival { source: u32 },
    Departure { link: u32 },
}

/// Measurements of one [`advance`](TrafficSession::advance) segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// First slot of the segment (inclusive).
    pub start_slot: u64,
    /// One past the last slot of the segment.
    pub end_slot: u64,
    /// Packets injected during the segment.
    pub injected: u64,
    /// Packets delivered to a sink during the segment.
    pub delivered: u64,
    /// Packets dropped during the segment (no route at a live hop).
    pub dropped: u64,
    /// In-flight packets when the segment ended.
    pub backlog_end: u64,
    /// End-to-end delay stats over the segment's delivered packets.
    pub delay: DelayStats,
}

impl SegmentReport {
    /// Delivered ÷ injected over this segment, in percent (100 when nothing
    /// was injected — an idle segment loses nothing).
    pub fn delivery_pct(&self) -> f64 {
        if self.injected == 0 {
            100.0
        } else {
            self.delivered as f64 / self.injected as f64 * 100.0
        }
    }
}

/// Cumulative counters over a whole session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct SessionTotals {
    /// Packets injected since the session started.
    pub injected: u64,
    /// Packets delivered to a sink.
    pub delivered: u64,
    /// Packets dropped (no route at a live hop, or unrescuable strands).
    pub dropped: u64,
    /// Stranded packets re-homed onto new routes by rescue passes.
    pub rescued: u64,
    /// Packets currently queued somewhere.
    pub in_flight: u64,
    /// Maximum concurrent in-flight packets ever observed.
    pub peak_backlog: u64,
}

/// The resumable traffic simulation. See the module docs.
#[derive(Debug)]
pub struct TrafficSession {
    frame: FrameService,
    /// Absolute slot at which `frame` was installed (its slot 0).
    frame_epoch: u64,
    routes: ForwardingTable,
    sources: Vec<Source>,
    samplers: Vec<ArrivalSampler>,
    /// Next undelivered arrival instant per source, in absolute slots.
    pending_arrival: Vec<Option<f64>>,
    paused: Vec<bool>,
    /// Link registry: stable indices across frame swaps and reroutes.
    links: Vec<Link>,
    link_index: HashMap<Link, u32>,
    queues: Vec<SessionQueue>,
    now_slot: u64,
    slot_ns: u64,
    slot_duration: SimTime,
    totals: SessionTotals,
    delays_slots: Vec<f64>,
}

impl TrafficSession {
    /// Creates a session serving `sources` over `routes` with the repeating
    /// `frame`. Sources are seeded exactly like the engine's flows: source
    /// `i` gets `config.seed + i · φ` (so a session built from a forest's
    /// flow order reproduces the engine's arrival streams). The
    /// `horizon_frames` field of `config` is ignored — the caller paces the
    /// session with [`advance`](Self::advance).
    ///
    /// # Errors
    ///
    /// * [`TrafficError::EmptyFrame`] for a frame with no slots;
    /// * [`TrafficError::NoFlows`] for an empty source list;
    /// * [`TrafficError::ZeroSlotDuration`] for a zero slot duration.
    pub fn new(
        frame: FrameService,
        sources: Vec<Source>,
        routes: ForwardingTable,
        config: TrafficConfig,
    ) -> Result<Self, TrafficError> {
        if frame.is_empty() {
            return Err(TrafficError::EmptyFrame);
        }
        if sources.is_empty() {
            return Err(TrafficError::NoFlows);
        }
        if config.slot_duration == SimTime::ZERO {
            return Err(TrafficError::ZeroSlotDuration);
        }
        let samplers = sources
            .iter()
            .enumerate()
            .map(|(i, source)| {
                let seed = config
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                ArrivalSampler::new(source.arrival, seed)
            })
            .collect();
        let pending_arrival = vec![None; sources.len()];
        let paused = vec![false; sources.len()];
        Ok(Self {
            frame,
            frame_epoch: 0,
            routes,
            samplers,
            pending_arrival,
            paused,
            sources,
            links: Vec::new(),
            link_index: HashMap::new(),
            queues: Vec::new(),
            now_slot: 0,
            slot_ns: config.slot_duration.as_nanos(),
            slot_duration: config.slot_duration,
            totals: SessionTotals::default(),
            delays_slots: Vec::new(),
        })
    }

    /// The current absolute slot (start of the next segment).
    pub fn now_slot(&self) -> u64 {
        self.now_slot
    }

    /// The frame currently being served.
    pub fn frame(&self) -> &FrameService {
        &self.frame
    }

    /// The current forwarding table.
    pub fn routes(&self) -> &ForwardingTable {
        &self.routes
    }

    /// Cumulative counters since the session started.
    pub fn totals(&self) -> SessionTotals {
        self.totals
    }

    /// End-to-end delay statistics over every packet delivered so far.
    pub fn delay(&self) -> DelayStats {
        DelayStats::from_delays(self.delays_slots.clone())
    }

    fn link_idx(&mut self, link: Link) -> u32 {
        if let Some(&idx) = self.link_index.get(&link) {
            return idx;
        }
        let idx = self.links.len() as u32;
        self.links.push(link);
        self.queues.push(SessionQueue::default());
        self.link_index.insert(link, idx);
        idx
    }

    /// Marks `link` dead: it stops serving and packets queued on it strand
    /// (until [`rescue_stranded`](Self::rescue_stranded) or
    /// [`restore_link`](Self::restore_link)).
    pub fn fail_link(&mut self, link: Link) {
        let idx = self.link_idx(link);
        self.queues[idx as usize].dead = true;
        scream_obs::counter_add("traffic.link_failures", 1);
    }

    /// Brings a failed link back into service.
    pub fn restore_link(&mut self, link: Link) {
        let idx = self.link_idx(link);
        self.queues[idx as usize].dead = false;
    }

    /// Whether `link` is currently marked dead.
    pub fn is_link_dead(&self, link: Link) -> bool {
        self.link_index
            .get(&link)
            .map(|&i| self.queues[i as usize].dead)
            .unwrap_or(false)
    }

    /// Installs a repaired frame. The new frame's slot 0 is the current
    /// slot, so service windows are phase-aligned with the swap, not with
    /// the session origin. Queued packets are re-assigned to the new frame's
    /// slots at the start of the next segment.
    pub fn swap_frame(&mut self, frame: FrameService) -> Result<(), TrafficError> {
        if frame.is_empty() {
            return Err(TrafficError::EmptyFrame);
        }
        self.frame = frame;
        self.frame_epoch = self.now_slot;
        for queue in &mut self.queues {
            queue.cursor = None;
        }
        scream_obs::counter_add("traffic.frame_swaps", 1);
        Ok(())
    }

    /// Installs a new forwarding table. Packets already in flight follow it
    /// from their current position at their next hop.
    pub fn set_routes(&mut self, routes: ForwardingTable) {
        self.routes = routes;
    }

    /// Pauses a source (admission control): it injects nothing until
    /// resumed. Unknown nodes are ignored.
    pub fn pause_source(&mut self, node: NodeId) {
        if let Some(i) = self.sources.iter().position(|s| s.node == node) {
            self.paused[i] = true;
        }
    }

    /// Resumes a paused source, fast-forwarding its arrival process past the
    /// paused interval (arrivals that would have occurred while paused are
    /// discarded, not batched).
    pub fn resume_source(&mut self, node: NodeId) {
        let Some(i) = self.sources.iter().position(|s| s.node == node) else {
            return;
        };
        if !self.paused[i] {
            return;
        }
        self.paused[i] = false;
        let now = self.now_slot as f64;
        let mut next = self.pending_arrival[i];
        while next.map(|t| t < now).unwrap_or(true) {
            let drawn = self.samplers[i].next_arrival_slots();
            if drawn >= now {
                next = Some(drawn);
                break;
            }
            next = Some(drawn);
        }
        self.pending_arrival[i] = next;
    }

    /// Whether `node`'s source is currently paused.
    pub fn is_source_paused(&self, node: NodeId) -> bool {
        self.sources
            .iter()
            .position(|s| s.node == node)
            .map(|i| self.paused[i])
            .unwrap_or(false)
    }

    /// Re-homes packets stranded on links that are dead or no longer served
    /// by the current frame: each is re-enqueued at its head node's current
    /// next hop (counted as rescued), or dropped if the node has none.
    /// Returns `(rescued, dropped)`.
    pub fn rescue_stranded(&mut self) -> (u64, u64) {
        let mut rescued = 0u64;
        let mut dropped = 0u64;
        for idx in 0..self.links.len() {
            let link = self.links[idx];
            let stranded = {
                let q = &self.queues[idx];
                q.dead || self.frame.service_slots(link) == 0
            };
            if !stranded || self.queues[idx].queue.is_empty() {
                continue;
            }
            let packets: Vec<SessionPacket> = self.queues[idx].queue.drain(..).collect();
            self.queues[idx].cursor = None;
            let target = self.routes.next_hop(link.head).filter(|&t| t != link);
            match target {
                Some(target) => {
                    let tidx = self.link_idx(target) as usize;
                    rescued += packets.len() as u64;
                    self.queues[tidx].queue.extend(packets);
                    // Fresh assignments for the merged queue next segment.
                    self.queues[tidx].cursor = None;
                }
                None => {
                    dropped += packets.len() as u64;
                    self.totals.in_flight -= packets.len() as u64;
                }
            }
        }
        self.totals.rescued += rescued;
        self.totals.dropped += dropped;
        scream_obs::counter_add("traffic.rescued", rescued);
        scream_obs::counter_add("traffic.rescue_dropped", dropped);
        (rescued, dropped)
    }

    /// Per-link offered load vs. service share under the **current** table,
    /// frame, fault state and pause state, with the analytic stability
    /// verdict. Dead links count as zero service, so any offered load on
    /// them is an infinite bottleneck.
    pub fn analytic_loads(&self) -> (Vec<LinkLoad>, StabilityVerdict) {
        // Report path: BTreeMap so no hash-ordered container feeds the
        // verdict, even though this index is lookup-only (D1.iter).
        let mut index: BTreeMap<Link, usize> = BTreeMap::new();
        let mut loads: Vec<LinkLoad> = Vec::new();
        for (i, source) in self.sources.iter().enumerate() {
            if self.paused[i] {
                continue;
            }
            let rate = source.arrival.mean_rate();
            for link in self.routes.path_links(source.node) {
                let entry = *index.entry(link).or_insert_with(|| {
                    let share = if self.is_link_dead(link) {
                        0.0
                    } else {
                        self.frame.service_share(link)
                    };
                    loads.push(LinkLoad {
                        link,
                        offered_per_slot: 0.0,
                        service_share: share,
                    });
                    loads.len() - 1
                });
                loads[entry].offered_per_slot += rate;
            }
        }
        let bottlenecks: Vec<LinkLoad> = loads.iter().filter(|l| !l.is_stable()).copied().collect();
        let verdict = if bottlenecks.is_empty() {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Overloaded { bottlenecks }
        };
        (loads, verdict)
    }

    /// `FrameService::next_service_slot` in absolute session slots: the
    /// frame repeats from `frame_epoch`, not from slot 0.
    fn next_service_abs(&self, link: Link, from_abs: u64) -> Option<(u64, u32)> {
        let from_rel = from_abs.saturating_sub(self.frame_epoch);
        self.frame
            .next_service_slot(link, from_rel)
            .map(|n| (n.slot + self.frame_epoch, n.capacity))
    }

    /// Assigns the departure slot for a packet joining `link`'s queue with
    /// the given ready slot — the engine's cursor logic, in absolute slots.
    /// `None` for dead links and links the frame never serves.
    fn assign_departure(&mut self, link_idx: u32, ready: u64) -> Option<u64> {
        let link = self.links[link_idx as usize];
        if self.queues[link_idx as usize].dead {
            return None;
        }
        if let Some((slot, used, capacity)) = self.queues[link_idx as usize].cursor {
            if ready <= slot {
                if used < capacity {
                    self.queues[link_idx as usize].cursor = Some((slot, used + 1, capacity));
                    return Some(slot);
                }
                let (next, capacity) = self.next_service_abs(link, slot + 1)?;
                self.queues[link_idx as usize].cursor = Some((next, 1, capacity));
                return Some(next);
            }
        }
        let (next, capacity) = self.next_service_abs(link, ready)?;
        self.queues[link_idx as usize].cursor = Some((next, 1, capacity));
        Some(next)
    }

    fn enqueue(
        &mut self,
        queue: &mut EventQueue<SessionEvent>,
        end: SimTime,
        link_idx: u32,
        packet: SessionPacket,
        ready: u64,
    ) {
        let departure = self.assign_departure(link_idx, ready);
        self.queues[link_idx as usize].queue.push_back(packet);
        if let Some(slot) = departure {
            let at = self.slot_duration.saturating_mul(slot + 1);
            if at <= end {
                queue.schedule(at, SessionEvent::Departure { link: link_idx });
            }
        }
    }

    fn ready_slot(&self, time: SimTime) -> u64 {
        time.as_nanos().div_ceil(self.slot_ns)
    }

    fn schedule_next_arrival(
        &mut self,
        queue: &mut EventQueue<SessionEvent>,
        end: SimTime,
        source: u32,
    ) {
        let i = source as usize;
        let slots = match self.pending_arrival[i] {
            Some(slots) => slots,
            None => {
                let drawn = self.samplers[i].next_arrival_slots();
                self.pending_arrival[i] = Some(drawn);
                drawn
            }
        };
        let at = SimTime::from_nanos((slots * self.slot_ns as f64).round() as u64);
        if at < end {
            queue.schedule(at.max(queue.now()), SessionEvent::Arrival { source });
        }
    }

    fn handle(
        &mut self,
        queue: &mut EventQueue<SessionEvent>,
        end: SimTime,
        event: SessionEvent,
        now: SimTime,
        segment: &mut SegmentReport,
    ) {
        match event {
            SessionEvent::Arrival { source } => {
                self.pending_arrival[source as usize] = None;
                let node = self.sources[source as usize].node;
                match self.routes.next_hop(node) {
                    Some(first) => {
                        self.totals.injected += 1;
                        self.totals.in_flight += 1;
                        self.totals.peak_backlog =
                            self.totals.peak_backlog.max(self.totals.in_flight);
                        segment.injected += 1;
                        let idx = self.link_idx(first);
                        let packet = SessionPacket { created: now };
                        self.enqueue(queue, end, idx, packet, self.ready_slot(now));
                    }
                    None => {
                        // A cut-off source: the packet is lost at injection.
                        self.totals.injected += 1;
                        self.totals.dropped += 1;
                        segment.injected += 1;
                        segment.dropped += 1;
                    }
                }
                self.schedule_next_arrival(queue, end, source);
            }
            SessionEvent::Departure { link } => {
                let packet = self.queues[link as usize]
                    .queue
                    .pop_front()
                    .expect("departure events match queued packets one to one");
                let node = self.links[link as usize].tail;
                if self.routes.is_sink(node) {
                    self.totals.delivered += 1;
                    self.totals.in_flight -= 1;
                    segment.delivered += 1;
                    let delay = now.saturating_sub(packet.created);
                    let slots = delay.as_nanos() as f64 / self.slot_ns as f64;
                    self.delays_slots.push(slots);
                    segment_push_delay(segment, slots);
                } else {
                    match self.routes.next_hop(node) {
                        Some(next) => {
                            let idx = self.link_idx(next);
                            self.enqueue(queue, end, idx, packet, self.ready_slot(now));
                        }
                        None => {
                            self.totals.dropped += 1;
                            self.totals.in_flight -= 1;
                            segment.dropped += 1;
                        }
                    }
                }
            }
        }
    }

    /// Runs the simulation forward `slots` slots and returns the segment's
    /// measurements. Departure assignments are FIFO-reconstructed from the
    /// queue state at the segment start, so pausing and resuming at any
    /// boundary does not change what a continuous run would have done.
    pub fn advance(&mut self, slots: u64) -> SegmentReport {
        let start_slot = self.now_slot;
        let end_slot = start_slot + slots;
        let end = self.slot_duration.saturating_mul(end_slot);
        let mut segment = SegmentReport {
            start_slot,
            end_slot,
            injected: 0,
            delivered: 0,
            dropped: 0,
            backlog_end: 0,
            delay: DelayStats::default(),
        };
        let mut queue: EventQueue<SessionEvent> = EventQueue::new();

        // Reconstruct departure assignments for everything queued: reset
        // cursors, then re-assign in FIFO order with ready = segment start.
        for q in &mut self.queues {
            q.cursor = None;
        }
        for idx in 0..self.links.len() as u32 {
            let backlog = self.queues[idx as usize].queue.len();
            for _ in 0..backlog {
                if let Some(slot) = self.assign_departure(idx, start_slot) {
                    let at = self.slot_duration.saturating_mul(slot + 1);
                    if at <= end {
                        queue.schedule(at, SessionEvent::Departure { link: idx });
                    }
                }
            }
        }
        // Arm arrivals for every unpaused source.
        for i in 0..self.sources.len() as u32 {
            if !self.paused[i as usize] {
                self.schedule_next_arrival(&mut queue, end, i);
            }
        }

        queue.run_until(end, |q, ev| {
            // Split-borrow dance: `handle` needs `&mut self` and the report.
            let event = ev.event;
            let time = ev.time;
            self.handle(q, end, event, time, &mut segment);
        });
        self.now_slot = end_slot;
        segment.backlog_end = self.totals.in_flight;
        finalize_segment_delay(&mut segment);
        scream_obs::set_slot(end_slot);
        scream_obs::counter_add("traffic.injected", segment.injected);
        scream_obs::counter_add("traffic.delivered", segment.delivered);
        scream_obs::counter_add("traffic.dropped", segment.dropped);
        scream_obs::gauge_set("traffic.backlog", segment.backlog_end);
        scream_obs::event(
            "traffic.segment",
            &[
                ("injected", segment.injected),
                ("delivered", segment.delivered),
                ("dropped", segment.dropped),
                ("backlog", segment.backlog_end),
            ],
        );
        segment
    }
}

/// Accumulates one delay sample into the segment's running stats buffer.
/// (Kept outside the struct to avoid borrowing `self` twice in `handle`.)
fn segment_push_delay(segment: &mut SegmentReport, slots: f64) {
    // `DelayStats` is assembled at segment end; stash samples in `mean_slots`
    // as a running sum and `count` until then.
    segment.delay.count += 1;
    segment.delay.mean_slots += slots;
    segment.delay.max_slots = segment.delay.max_slots.max(slots);
}

/// Converts the running sum stashed by [`segment_push_delay`] into a mean.
/// Percentiles are only tracked session-wide ([`TrafficSession::delay`]).
fn finalize_segment_delay(segment: &mut SegmentReport) {
    if segment.delay.count > 0 {
        segment.delay.mean_slots /= segment.delay.count as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TrafficEngine;
    use crate::flow::FlowSet;
    use scream_scheduling::Schedule;
    use scream_topology::{DemandVector, Graph, GraphKind};

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    /// A path 3→2→1→0 with gateway 0, served round-robin one link per slot.
    fn path_setup() -> (Schedule, ForwardingTable) {
        let mut g = Graph::new(4, GraphKind::Undirected);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let forest = RoutingForest::shortest_path(&g, &[NodeId::new(0)], 1).unwrap();
        let table = ForwardingTable::from_forest(&forest);
        let frame =
            Schedule::from_slots(vec![vec![link(3, 2)], vec![link(2, 1)], vec![link(1, 0)]]);
        (frame, table)
    }

    fn session(frame: &Schedule, table: ForwardingTable, rate: f64, seed: u64) -> TrafficSession {
        let sources = vec![Source {
            node: NodeId::new(3),
            arrival: ArrivalProcess::deterministic(rate),
        }];
        let mut config = TrafficConfig::new(1);
        config.seed = seed;
        TrafficSession::new(FrameService::from_schedule(frame), sources, table, config).unwrap()
    }

    #[test]
    fn forwarding_table_paths_follow_the_forest() {
        let (_, table) = path_setup();
        assert_eq!(
            table.path_links(NodeId::new(3)),
            vec![link(3, 2), link(2, 1), link(1, 0)]
        );
        assert!(table.is_sink(NodeId::new(0)));
        assert_eq!(table.next_hop(NodeId::new(0)), None);
    }

    #[test]
    fn session_matches_engine_on_an_uninterrupted_run() {
        // Same path, same seed, same horizon: the session's aggregate
        // measurements must reproduce the engine's exactly.
        let (frame, table) = path_setup();
        let horizon_frames = 40u64;
        let mut g = Graph::new(4, GraphKind::Undirected);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let forest = RoutingForest::shortest_path(&g, &[NodeId::new(0)], 1).unwrap();
        let demands = DemandVector::from_vec(vec![0, 1, 1, 1]);
        let flows =
            FlowSet::along_forest_with(&forest, &demands, 0.2, |_, r| ArrivalProcess::poisson(r));
        let config = TrafficConfig::new(horizon_frames).with_seed(11);
        let engine = TrafficEngine::on_schedule(&frame, flows, config).unwrap();
        let report = engine.run();

        // The forest has sources {1, 2, 3}; the engine seeds flows by index
        // in node order, so the session must list sources the same way.
        let sources: Vec<Source> = [1u32, 2, 3]
            .iter()
            .map(|&n| Source {
                node: NodeId::new(n),
                arrival: ArrivalProcess::poisson(0.2),
            })
            .collect();
        let mut session =
            TrafficSession::new(FrameService::from_schedule(&frame), sources, table, config)
                .unwrap();
        let segment = session.advance(horizon_frames * 3);
        assert_eq!(segment.injected, report.injected);
        assert_eq!(segment.delivered, report.delivered);
        assert_eq!(session.totals().in_flight, report.final_backlog);
        assert_eq!(session.totals().peak_backlog, report.peak_backlog);
        assert!((session.delay().mean_slots - report.delay.mean_slots).abs() < 1e-9);
        assert!((session.delay().p95_slots - report.delay.p95_slots).abs() < 1e-9);
    }

    #[test]
    fn segmentation_is_transparent() {
        // Advancing in many small segments must give the same cumulative
        // counts as one big segment (fresh identical session).
        let (frame, table) = path_setup();
        let mut one = session(&frame, table.clone(), 0.25, 7);
        let big = one.advance(120);
        let mut many = session(&frame, table, 0.25, 7);
        let mut injected = 0;
        let mut delivered = 0;
        for _ in 0..12 {
            let s = many.advance(10);
            injected += s.injected;
            delivered += s.delivered;
        }
        assert_eq!(injected, big.injected);
        assert_eq!(delivered, big.delivered);
        assert_eq!(many.totals(), one.totals());
        assert!((many.delay().mean_slots - one.delay().mean_slots).abs() < 1e-9);
    }

    #[test]
    fn a_dead_link_strands_packets_and_the_verdict_turns_overloaded() {
        let (frame, table) = path_setup();
        let mut s = session(&frame, table, 0.25, 3);
        let before = s.advance(60);
        assert!(before.delivered > 0);
        let (_, verdict) = s.analytic_loads();
        assert!(verdict.is_stable());

        s.fail_link(link(2, 1));
        let during = s.advance(60);
        assert_eq!(
            during.delivered, 0,
            "everything funnels through the dead link"
        );
        assert!(during.backlog_end > 0, "strands accumulate");
        let (loads, verdict) = s.analytic_loads();
        assert!(!verdict.is_stable());
        let dead = loads.iter().find(|l| l.link == link(2, 1)).unwrap();
        assert!(dead.utilization().is_infinite());
    }

    #[test]
    fn restore_link_resumes_service_for_stranded_packets() {
        let (frame, table) = path_setup();
        let mut s = session(&frame, table, 0.25, 3);
        s.fail_link(link(2, 1));
        let during = s.advance(40);
        assert_eq!(during.delivered, 0);
        s.restore_link(link(2, 1));
        let after = s.advance(80);
        assert!(after.delivered > 0, "strands drain once the link returns");
        let (_, verdict) = s.analytic_loads();
        assert!(verdict.is_stable());
    }

    #[test]
    fn rescue_reroutes_strands_and_drops_the_unroutable() {
        // Diamond: 3 can reach gateway 0 via 2 or via 1. Start via 2, kill
        // (2,0), reroute via 1, rescue.
        let mut g = Graph::new(4, GraphKind::Undirected);
        for (u, v) in [(0u32, 1u32), (0, 2), (3, 1), (3, 2)] {
            g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
        }
        let dead = link(2, 0);
        // Build a table routing 3 → 2 → 0 by pruning the (3,1) option.
        let via2 = RoutingForest::shortest_path(
            &g.without_edges([(NodeId::new(3), NodeId::new(1))]),
            &[NodeId::new(0)],
            1,
        )
        .unwrap();
        let frame = Schedule::from_slots(vec![
            vec![link(3, 2)],
            vec![dead],
            vec![link(3, 1)],
            vec![link(1, 0)],
        ]);
        let sources = vec![Source {
            node: NodeId::new(3),
            arrival: ArrivalProcess::deterministic(0.2),
        }];
        let mut s = TrafficSession::new(
            FrameService::from_schedule(&frame),
            sources,
            ForwardingTable::from_forest(&via2),
            TrafficConfig::new(1),
        )
        .unwrap();
        s.advance(20);
        s.fail_link(dead);
        s.advance(20);
        let stranded = s
            .link_index
            .get(&dead)
            .map(|&i| s.queues[i as usize].queue.len())
            .unwrap_or(0);
        assert!(stranded > 0, "packets pile on the dead link");

        // Reroute around the failure and rescue: 2's packets re-home via
        // 2 → ... under the new table. In the pruned graph without (2,0),
        // node 2 routes via 3 → 1 → 0.
        let rerouted = RoutingForest::shortest_path(
            &g.without_edges([(dead.head, dead.tail)]),
            &[NodeId::new(0)],
            1,
        )
        .unwrap();
        s.set_routes(ForwardingTable::from_forest(&rerouted));
        let (rescued, dropped) = s.rescue_stranded();
        assert_eq!(rescued as usize, stranded);
        assert_eq!(dropped, 0);
        // The rescued packets need service on their rescue path; the frame
        // already serves (3,1) and (1,0)... but 2 routes via (2,3) which the
        // frame never serves, so they strand again until a frame swap. Swap
        // in a frame that serves the rescue path.
        let repaired =
            Schedule::from_slots(vec![vec![link(2, 3)], vec![link(3, 1)], vec![link(1, 0)]]);
        s.swap_frame(FrameService::from_schedule(&repaired))
            .unwrap();
        let (rescued2, dropped2) = s.rescue_stranded();
        assert_eq!((rescued2, dropped2), (0, 0), "nothing left stranded");
        let after = s.advance(120);
        assert!(after.delivered > 0, "rescued packets reach the gateway");
        assert_eq!(s.totals().rescued, rescued);
    }

    #[test]
    fn rescue_drops_packets_with_no_remaining_route() {
        let (frame, table) = path_setup();
        let mut s = session(&frame, table, 0.25, 9);
        s.advance(40);
        s.fail_link(link(1, 0));
        s.advance(40);
        // Cut node 1 off entirely: the partial forest reaches only {0}.
        let g = Graph::new(4, GraphKind::Undirected);
        let (orphaned, _) = RoutingForest::shortest_path_partial(&g, &[NodeId::new(0)], 1).unwrap();
        s.set_routes(ForwardingTable::from_forest(&orphaned));
        let before = s.totals();
        let (rescued, dropped) = s.rescue_stranded();
        assert_eq!(rescued, 0);
        assert!(dropped > 0, "unroutable strands are dropped");
        assert_eq!(s.totals().dropped, before.dropped + dropped);
        assert_eq!(s.totals().in_flight, before.in_flight - dropped);
    }

    #[test]
    fn paused_sources_inject_nothing_and_resume_cleanly() {
        let (frame, table) = path_setup();
        let mut s = session(&frame, table, 0.25, 5);
        s.pause_source(NodeId::new(3));
        let paused = s.advance(40);
        assert_eq!(paused.injected, 0);
        s.resume_source(NodeId::new(3));
        let resumed = s.advance(40);
        assert!(resumed.injected > 0);
        // Fast-forward: roughly the paused interval's arrivals are gone.
        assert!(resumed.injected <= 11);
    }

    #[test]
    fn frame_swap_phase_aligns_to_the_swap_slot() {
        // A frame serving the link only in its first slot: after a swap at
        // slot 30, service happens at slots 30, 33, 36... (epoch-relative),
        // not at 30, 32, 34 (origin-relative would hit 32's frame start).
        let l = link(1, 0);
        let frame = Schedule::from_slots(vec![vec![l], vec![], vec![]]);
        let mut g = Graph::new(2, GraphKind::Undirected);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let forest = RoutingForest::shortest_path(&g, &[NodeId::new(0)], 1).unwrap();
        let sources = vec![Source {
            node: NodeId::new(1),
            arrival: ArrivalProcess::deterministic(0.25),
        }];
        let mut s = TrafficSession::new(
            FrameService::from_schedule(&frame),
            sources,
            ForwardingTable::from_forest(&forest),
            TrafficConfig::new(1),
        )
        .unwrap();
        s.advance(30);
        let delivered_before = s.totals().delivered;
        s.swap_frame(FrameService::from_schedule(&frame)).unwrap();
        let seg = s.advance(30);
        assert!(s.totals().delivered > delivered_before);
        // Same frame, same phase relative to the swap: throughput holds.
        assert!(seg.delivered >= 6);
    }

    #[test]
    fn construction_rejects_degenerate_inputs() {
        let (frame, table) = path_setup();
        let empty_frame = FrameService::from_schedule(&Schedule::new());
        let sources = vec![Source {
            node: NodeId::new(3),
            arrival: ArrivalProcess::deterministic(0.1),
        }];
        assert!(matches!(
            TrafficSession::new(
                empty_frame,
                sources.clone(),
                table.clone(),
                TrafficConfig::new(1)
            ),
            Err(TrafficError::EmptyFrame)
        ));
        assert!(matches!(
            TrafficSession::new(
                FrameService::from_schedule(&frame),
                Vec::new(),
                table.clone(),
                TrafficConfig::new(1)
            ),
            Err(TrafficError::NoFlows)
        ));
        let mut zero = TrafficConfig::new(1);
        zero.slot_duration = SimTime::ZERO;
        assert!(matches!(
            TrafficSession::new(FrameService::from_schedule(&frame), sources, table, zero),
            Err(TrafficError::ZeroSlotDuration)
        ));
    }
}
