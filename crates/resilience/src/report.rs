//! Graceful-degradation metrics: how much a fault cost and how fast the
//! rescheduler recovered.

use serde::Serialize;

use scream_scheduling::RepairOutcome;
use scream_traffic::SessionTotals;

/// Traffic measurements of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// First slot of the epoch (inclusive).
    pub start_slot: u64,
    /// One past the last slot of the epoch.
    pub end_slot: u64,
    /// Packets injected during the epoch.
    pub injected: u64,
    /// Packets delivered during the epoch.
    pub delivered: u64,
    /// Packets dropped during the epoch (lost routes, unrescuable strands).
    pub dropped: u64,
    /// In-flight packets when the epoch started (the previous epoch's
    /// `backlog_end`; 0 for epoch 0).
    pub backlog_start: u64,
    /// In-flight packets when the epoch ended.
    pub backlog_end: u64,
    /// `100 · delivered / (injected + backlog_start)` for the epoch (100
    /// when nothing was deliverable). Every delivered packet was injected
    /// this epoch or carried in, so the value is mathematically <= 100 —
    /// a draining backlog shows up as *later* epochs delivering their
    /// carry-in, not as ratios above 100.
    pub delivery_pct: f64,
    /// Whether the analytic verdict at the epoch end was Stable.
    pub stable: bool,
}

/// One rescheduling action taken by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RepairRecord {
    /// The slot at which the repair was installed.
    pub slot: u64,
    /// Whether the compact schedule was patched incrementally or rebuilt
    /// from scratch.
    pub outcome: RepairOutcome,
    /// Frame length before the repair.
    pub frame_slots_before: u64,
    /// Frame length after the repair.
    pub frame_slots_after: u64,
    /// Slot-allocation units removed by the incremental patch.
    pub removed_allocation: u64,
    /// Slot-allocation units added by the incremental patch.
    pub added_allocation: u64,
}

/// The outcome of one [`ResilienceHarness`](crate::ResilienceHarness) run:
/// per-epoch traffic, every repair taken, and the headline
/// graceful-degradation numbers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// Frame length of the initial (pre-fault) schedule.
    pub frame_slots_initial: u64,
    /// Simulated horizon in slots.
    pub horizon_slots: u64,
    /// Per-epoch traffic measurements, in order.
    pub epochs: Vec<EpochMetrics>,
    /// Every rescheduling action, in order.
    pub repairs: Vec<RepairRecord>,
    /// Cumulative session counters (injected / delivered / dropped /
    /// rescued / in-flight / peak backlog).
    pub totals: SessionTotals,
    /// The slot of the first injected fault, if the trace was non-empty.
    pub first_fault_slot: Option<u64>,
    /// Slots from the first fault until sustained recovery: the first epoch
    /// boundary after which every remaining epoch dropped nothing, kept a
    /// Stable analytic verdict, and held its backlog inside the pre-fault
    /// band (outage strands fully drained). `None` if the run never
    /// recovered (or saw no fault).
    pub time_to_recover_slots: Option<u64>,
    /// Delivery percentage over the outage window (first fault to recovery,
    /// or to the horizon when the run never recovered).
    pub outage_delivery_pct: f64,
    /// Delivery percentage over the epochs after recovery (100 if the run
    /// ends at the recovery point).
    pub post_recovery_delivery_pct: f64,
    /// Peak in-flight backlog over the whole run — the disruption cost of
    /// the outage plus any frame-swap churn.
    pub disruption_peak_backlog: u64,
    /// Flows the admission controller was holding paused at the horizon.
    pub deferred_flows: usize,
    /// Whether the analytic verdict at the horizon was Stable.
    pub final_verdict_stable: bool,
}

impl ResilienceReport {
    /// Overall delivery percentage across the whole run.
    pub fn delivery_pct(&self) -> f64 {
        if self.totals.injected == 0 {
            100.0
        } else {
            self.totals.delivered as f64 / self.totals.injected as f64 * 100.0
        }
    }

    /// How many repairs were applied incrementally (vs. full rebuilds).
    pub fn incremental_repairs(&self) -> usize {
        self.repairs
            .iter()
            .filter(|r| r.outcome == RepairOutcome::Incremental)
            .count()
    }
}

impl std::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} epochs over {} slots: {:.1}% delivered overall, \
             {:.1}% during outage, recovery {}, peak backlog {}, \
             {} repair(s) ({} incremental), {} stranded rescued, {} dropped, {}",
            self.epochs.len(),
            self.horizon_slots,
            self.delivery_pct(),
            self.outage_delivery_pct,
            match self.time_to_recover_slots {
                Some(slots) => format!("in {slots} slots"),
                None => "never".to_string(),
            },
            self.disruption_peak_backlog,
            self.repairs.len(),
            self.incremental_repairs(),
            self.totals.rescued,
            self.totals.dropped,
            if self.final_verdict_stable {
                "stable"
            } else {
                "OVERLOADED"
            },
        )
    }
}
