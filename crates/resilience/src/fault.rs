//! Deterministic fault plans: what breaks, when, and when it comes back.
//!
//! A [`ChurnTrace`] is a slot-ordered list of [`FaultEvent`]s — link and
//! node outages with their repairs, shadowing re-fades, and flow
//! stop/start churn. Traces are built either explicitly through
//! [`FaultPlan`] or drawn from a seeded distribution with
//! [`FaultPlan::random_churn`]; in both cases the result is a plain sorted
//! value type, so the same inputs always produce byte-identical traces
//! (pinned by the determinism property test in the workspace test suite).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use scream_topology::{Link, NodeId};

/// One kind of injected fault (or repair).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultKind {
    /// The (undirected) link stops carrying traffic in either direction.
    LinkDown(Link),
    /// A previously failed link returns to service.
    LinkUp(Link),
    /// The node dies: every link touching it goes down and its flow stops.
    NodeDown(NodeId),
    /// A previously failed node returns, together with its surviving links.
    NodeUp(NodeId),
    /// The shadowing field is redrawn: a time-varying fade that changes
    /// every link gain (and therefore the communication graph and SINR
    /// feasibility) at once.
    Fade {
        /// Log-normal shadowing deviation of the redrawn field, in dB.
        sigma_db: f64,
        /// Seed of the redrawn field.
        seed: u64,
    },
    /// The node's flow departs (stops injecting packets).
    FlowStop(NodeId),
    /// The node's flow arrives (starts, or resumes, injecting packets).
    FlowStart(NodeId),
}

/// A fault at a scheduled slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// The absolute slot at which the fault takes effect.
    pub slot: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A slot-ordered sequence of fault events.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ChurnTrace {
    events: Vec<FaultEvent>,
}

impl ChurnTrace {
    /// Builds a trace from events, sorting them by slot. Events at the same
    /// slot keep their given order (a `LinkDown` listed before a `LinkUp`
    /// at the same slot loses the race, deterministically).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.slot);
        Self { events }
    }

    /// The events, slot-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The slot of the first fault, if any.
    pub fn first_slot(&self) -> Option<u64> {
        self.events.first().map(|e| e.slot)
    }

    /// The slot of the last fault, if any.
    pub fn last_slot(&self) -> Option<u64> {
        self.events.last().map(|e| e.slot)
    }
}

/// Parameters of a random churn draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChurnConfig {
    /// The horizon the faults must fall inside.
    pub horizon_slots: u64,
    /// How many link outage/repair pairs to draw.
    pub link_failures: usize,
    /// How many node outage/repair pairs to draw.
    pub node_failures: usize,
    /// How many flow stop/start pairs to draw.
    pub flow_churns: usize,
    /// How many shadowing re-fades to draw.
    pub fades: usize,
    /// Mean outage duration (exponentially distributed), in slots.
    pub mean_outage_slots: f64,
    /// Shadowing deviation of drawn fades, in dB.
    pub fade_sigma_db: f64,
}

impl ChurnConfig {
    /// A single-link-failure baseline over the given horizon: one link
    /// outage lasting (on average) a quarter of the horizon, nothing else.
    pub fn single_link(horizon_slots: u64) -> Self {
        Self {
            horizon_slots,
            link_failures: 1,
            node_failures: 0,
            flow_churns: 0,
            fades: 0,
            mean_outage_slots: horizon_slots as f64 / 4.0,
            fade_sigma_db: 4.0,
        }
    }
}

/// Builder for fault plans: explicit events plus seeded random churn.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary event.
    pub fn at(mut self, slot: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { slot, kind });
        self
    }

    /// Fails `link` at `down_slot` and repairs it at `up_slot`.
    pub fn link_outage(self, link: Link, down_slot: u64, up_slot: u64) -> Self {
        self.at(down_slot, FaultKind::LinkDown(link))
            .at(up_slot, FaultKind::LinkUp(link))
    }

    /// Fails `link` at `down_slot`, permanently.
    pub fn link_down(self, link: Link, down_slot: u64) -> Self {
        self.at(down_slot, FaultKind::LinkDown(link))
    }

    /// Kills `node` at `down_slot` and revives it at `up_slot`.
    pub fn node_outage(self, node: NodeId, down_slot: u64, up_slot: u64) -> Self {
        self.at(down_slot, FaultKind::NodeDown(node))
            .at(up_slot, FaultKind::NodeUp(node))
    }

    /// Redraws the shadowing field at `slot`.
    pub fn fade(self, slot: u64, sigma_db: f64, seed: u64) -> Self {
        self.at(slot, FaultKind::Fade { sigma_db, seed })
    }

    /// Stops `node`'s flow at `stop_slot` and restarts it at `start_slot`.
    pub fn flow_churn(self, node: NodeId, stop_slot: u64, start_slot: u64) -> Self {
        self.at(stop_slot, FaultKind::FlowStop(node))
            .at(start_slot, FaultKind::FlowStart(node))
    }

    /// Appends seeded random churn over the given candidate links and
    /// nodes: outage starts are uniform in the middle 60% of the horizon
    /// (so the run has a pre-fault baseline and a post-repair tail),
    /// durations are exponential with the configured mean, and repairs
    /// past the horizon are dropped (the outage becomes permanent). The
    /// same `(config, candidates, seed)` triple always appends the same
    /// events.
    pub fn random_churn(
        mut self,
        config: ChurnConfig,
        links: &[Link],
        nodes: &[NodeId],
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let horizon = config.horizon_slots;
        let window_start = horizon / 5;
        let window_end = (horizon * 4) / 5;
        let outage_window = |rng: &mut ChaCha8Rng| {
            let down = rng.gen_range(window_start..window_end.max(window_start + 1));
            let length = exponential(rng, config.mean_outage_slots).max(1.0) as u64;
            (down, down.saturating_add(length))
        };
        for _ in 0..config.link_failures {
            if links.is_empty() {
                break;
            }
            let link = links[rng.gen_range(0..links.len())];
            let (down, up) = outage_window(&mut rng);
            self.events.push(FaultEvent {
                slot: down,
                kind: FaultKind::LinkDown(link),
            });
            if up < horizon {
                self.events.push(FaultEvent {
                    slot: up,
                    kind: FaultKind::LinkUp(link),
                });
            }
        }
        for _ in 0..config.node_failures {
            if nodes.is_empty() {
                break;
            }
            let node = nodes[rng.gen_range(0..nodes.len())];
            let (down, up) = outage_window(&mut rng);
            self.events.push(FaultEvent {
                slot: down,
                kind: FaultKind::NodeDown(node),
            });
            if up < horizon {
                self.events.push(FaultEvent {
                    slot: up,
                    kind: FaultKind::NodeUp(node),
                });
            }
        }
        for _ in 0..config.flow_churns {
            if nodes.is_empty() {
                break;
            }
            let node = nodes[rng.gen_range(0..nodes.len())];
            let (stop, start) = outage_window(&mut rng);
            self.events.push(FaultEvent {
                slot: stop,
                kind: FaultKind::FlowStop(node),
            });
            if start < horizon {
                self.events.push(FaultEvent {
                    slot: start,
                    kind: FaultKind::FlowStart(node),
                });
            }
        }
        for _ in 0..config.fades {
            let slot = rng.gen_range(window_start..window_end.max(window_start + 1));
            let fade_seed = rng.gen_range(0..u64::MAX);
            self.events.push(FaultEvent {
                slot,
                kind: FaultKind::Fade {
                    sigma_db: config.fade_sigma_db,
                    seed: fade_seed,
                },
            });
        }
        self
    }

    /// Finalizes the plan into a slot-ordered trace.
    pub fn build(self) -> ChurnTrace {
        ChurnTrace::new(self.events)
    }
}

/// `Exp(mean)`-distributed draw in slots.
fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn traces_sort_by_slot_and_keep_same_slot_order() {
        let trace = FaultPlan::new()
            .at(30, FaultKind::LinkUp(link(1, 0)))
            .at(10, FaultKind::LinkDown(link(1, 0)))
            .at(30, FaultKind::NodeDown(NodeId::new(2)))
            .build();
        assert_eq!(trace.first_slot(), Some(10));
        assert_eq!(trace.last_slot(), Some(30));
        assert_eq!(
            trace.events()[1].kind,
            FaultKind::LinkUp(link(1, 0)),
            "stable sort keeps the listed order within a slot"
        );
    }

    #[test]
    fn random_churn_is_seed_deterministic_and_in_window() {
        let links = [link(1, 0), link(2, 1), link(3, 2)];
        let nodes = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let config = ChurnConfig {
            horizon_slots: 1000,
            link_failures: 3,
            node_failures: 2,
            flow_churns: 2,
            fades: 1,
            mean_outage_slots: 100.0,
            fade_sigma_db: 4.0,
        };
        let a = FaultPlan::new()
            .random_churn(config, &links, &nodes, 7)
            .build();
        let b = FaultPlan::new()
            .random_churn(config, &links, &nodes, 7)
            .build();
        let c = FaultPlan::new()
            .random_churn(config, &links, &nodes, 8)
            .build();
        assert_eq!(a, b, "same seed, same trace");
        assert_ne!(a, c, "different seeds diverge");
        assert!(!a.is_empty());
        for event in a.events() {
            assert!(event.slot < 1000);
            if let FaultKind::LinkDown(_) | FaultKind::NodeDown(_) | FaultKind::FlowStop(_) =
                event.kind
            {
                assert!((200..800).contains(&event.slot), "outages start mid-run");
            }
        }
    }

    #[test]
    fn repairs_past_the_horizon_become_permanent_outages() {
        let links = [link(1, 0)];
        let config = ChurnConfig {
            horizon_slots: 100,
            link_failures: 1,
            node_failures: 0,
            flow_churns: 0,
            fades: 0,
            // Mean outage far beyond the horizon: the repair is dropped.
            mean_outage_slots: 1e9,
            fade_sigma_db: 4.0,
        };
        let trace = FaultPlan::new()
            .random_churn(config, &links, &[], 3)
            .build();
        assert_eq!(trace.events().len(), 1);
        assert!(matches!(trace.events()[0].kind, FaultKind::LinkDown(_)));
    }
}
