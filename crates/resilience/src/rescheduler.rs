//! The epoch-driven recovery loop: inject a [`ChurnTrace`] into a running
//! traffic session, reroute and repair around what broke, and measure how
//! gracefully the network degraded.
//!
//! [`ResilienceHarness::run`] drives one experiment:
//!
//! 1. build the pre-fault world — routing forest, link demands, a
//!    [`GreedyPhysical`] schedule of length `F₀`, and per-node sources
//!    offering `ρ · demand(v) / F₀` packets per slot (so every link sits at
//!    utilization ρ, exactly the paper's load model);
//! 2. advance a [`TrafficSession`] epoch by epoch, pausing at every fault
//!    slot;
//! 3. at each fault, update the fault state and — when
//!    [`ReschedulerConfig::repair`] is on — **reschedule**: prune the
//!    communication graph of dead links and nodes, rebuild the routing
//!    forest around them ([`RoutingForest::shortest_path_partial`]), zero
//!    the demands of dead and cut-off nodes, patch the compact schedule
//!    with [`repair_schedule`] (incremental run-level repair,
//!    verify-or-rebuild), swap the repaired frame and new routes into the
//!    live session, and [rescue](TrafficSession::rescue_stranded) the
//!    packets stranded on dead or no-longer-served links;
//! 4. after each repair, run **admission control**: while the analytic
//!    verdict is Overloaded, defer (pause) the highest-rate source crossing
//!    a bottleneck link — deferred sources are re-admitted at the next
//!    reschedule if capacity has returned;
//! 5. report per-epoch traffic, every repair taken, and the headline
//!    graceful-degradation metrics ([`ResilienceReport`]).
//!
//! With `repair` off the harness is the **no-repair baseline**: faults
//! still strand packets and kill service, but nothing reroutes — the
//! degradation the rescheduler is supposed to prevent.
//!
//! Shadowing fades ([`FaultKind::Fade`]) redraw the radio environment's
//! shadowing field. The packet engine does not model SINR loss, so a fade
//! acts through the *scheduling* path: the next repair is probed and
//! verified against the faded environment, falling back to a full rebuild
//! when the old slot groupings are no longer feasible.

use std::collections::BTreeSet;

use scream_netsim::RadioEnvironment;
use scream_scheduling::{repair_schedule, FrameService, GreedyPhysical, Schedule};
use scream_topology::{
    DemandVector, Graph, Link, LinkDemands, NodeId, RoutingForest, TopologyError,
};
use scream_traffic::{
    ArrivalProcess, ForwardingTable, SegmentReport, Source, StabilityVerdict, TrafficConfig,
    TrafficError, TrafficSession,
};

use crate::fault::{ChurnTrace, FaultKind};
use crate::report::{EpochMetrics, RepairRecord, ResilienceReport};

/// Knobs of the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReschedulerConfig {
    /// Epoch length in slots; `0` means "one initial frame length".
    pub epoch_slots: u64,
    /// Whether to reroute demands and repair the frame after each fault.
    /// Off = the no-repair baseline.
    pub repair: bool,
    /// Whether to defer flows while the analytic verdict is Overloaded.
    pub admission: bool,
    /// Per-epoch delivery percentage that counts as recovered.
    pub recovery_threshold_pct: f64,
}

impl Default for ReschedulerConfig {
    fn default() -> Self {
        Self {
            epoch_slots: 0,
            repair: true,
            admission: true,
            recovery_threshold_pct: 99.0,
        }
    }
}

impl ReschedulerConfig {
    /// The no-repair, no-admission baseline configuration.
    pub fn baseline() -> Self {
        Self {
            repair: false,
            admission: false,
            ..Self::default()
        }
    }
}

/// Why a resilience run could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilienceError {
    /// Building routes or demands failed (bad gateway set, …).
    Topology(TopologyError),
    /// Driving the traffic session failed (empty frame, …).
    Traffic(TrafficError),
    /// No node offers traffic: every demand is zero or unreachable.
    NoSources,
    /// The horizon is zero slots.
    ZeroHorizon,
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Topology(e) => write!(f, "topology error: {e}"),
            Self::Traffic(e) => write!(f, "traffic error: {e}"),
            Self::NoSources => write!(f, "no reachable node offers traffic"),
            Self::ZeroHorizon => write!(f, "the horizon must be at least one slot"),
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<TopologyError> for ResilienceError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

impl From<TrafficError> for ResilienceError {
    fn from(e: TrafficError) -> Self {
        Self::Traffic(e)
    }
}

/// One fault-injection experiment: an environment, gateways, demands and a
/// load factor, ready to [`run`](Self::run) against churn traces.
#[derive(Debug, Clone)]
pub struct ResilienceHarness {
    env: RadioEnvironment,
    gateways: Vec<NodeId>,
    demands: DemandVector,
    rho: f64,
    config: ReschedulerConfig,
}

impl ResilienceHarness {
    /// Creates a harness over the given world at load factor `rho` (the
    /// utilization every link sits at under the initial schedule).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rho` and `rho` is finite.
    pub fn new(
        env: RadioEnvironment,
        gateways: Vec<NodeId>,
        demands: DemandVector,
        rho: f64,
    ) -> Self {
        assert!(rho > 0.0 && rho.is_finite(), "load factor must be positive");
        Self {
            env,
            gateways,
            demands,
            rho,
            config: ReschedulerConfig::default(),
        }
    }

    /// Overrides the rescheduler configuration.
    pub fn with_config(mut self, config: ReschedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the experiment: `trace` injected over `horizon_slots` slots,
    /// with `seed` driving both routing tie-breaks and packet arrivals.
    /// Deterministic: the same harness, trace, horizon and seed produce an
    /// identical report.
    ///
    /// # Errors
    ///
    /// Fails on an empty gateway set, zero horizon, or when no reachable
    /// node offers traffic.
    pub fn run(
        &self,
        trace: &ChurnTrace,
        horizon_slots: u64,
        seed: u64,
    ) -> Result<ResilienceReport, ResilienceError> {
        if horizon_slots == 0 {
            return Err(ResilienceError::ZeroHorizon);
        }
        let mut state = RunState::start(self, seed)?;
        let epoch_slots = if self.config.epoch_slots == 0 {
            state.frame_slots_initial
        } else {
            self.config.epoch_slots
        };

        let mut events = trace
            .events()
            .iter()
            .filter(|e| e.slot < horizon_slots)
            .peekable();
        let mut epoch = EpochAccumulator::new(0, state.session.totals().in_flight);
        let mut epochs: Vec<EpochMetrics> = Vec::new();
        let mut now = 0u64;
        while now < horizon_slots {
            let mut faulted = false;
            while events.peek().map(|e| e.slot <= now).unwrap_or(false) {
                let event = events.next().expect("peeked");
                state.apply_fault(event.kind);
                scream_obs::counter_add("resilience.faults", 1);
                faulted = true;
            }
            if faulted {
                if self.config.repair {
                    state.reschedule(now)?;
                }
                state.sync_pause_states();
                if self.config.admission {
                    state.admit();
                }
            }
            let next_fault = events.peek().map(|e| e.slot).unwrap_or(horizon_slots);
            let next_epoch = ((now / epoch_slots) + 1) * epoch_slots;
            let target = next_fault.min(next_epoch).min(horizon_slots);
            let segment = state.session.advance(target - now);
            epoch.add(&segment);
            now = target;
            if now.is_multiple_of(epoch_slots) || now == horizon_slots {
                let metrics = epoch.flush(&state, now, epoch_slots);
                scream_obs::set_epoch(metrics.epoch);
                scream_obs::counter_add("resilience.epochs", 1);
                scream_obs::event(
                    "resilience.epoch",
                    &[
                        ("injected", metrics.injected),
                        ("delivered", metrics.delivered),
                        ("dropped", metrics.dropped),
                        ("backlog", metrics.backlog_end),
                    ],
                );
                epochs.push(metrics);
                epoch = EpochAccumulator::new(now, state.session.totals().in_flight);
            }
        }

        Ok(state.into_report(trace, horizon_slots, epochs))
    }
}

/// Running per-epoch counters between flushes.
struct EpochAccumulator {
    start_slot: u64,
    /// Packets in flight when the epoch opened. Delivered packets either
    /// arrived this epoch or were part of this carry-in, so
    /// `delivered <= injected + backlog_start` and the delivery percentage
    /// is mathematically <= 100.
    backlog_start: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
}

impl EpochAccumulator {
    fn new(start_slot: u64, backlog_start: u64) -> Self {
        Self {
            start_slot,
            backlog_start,
            injected: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    fn add(&mut self, segment: &SegmentReport) {
        self.injected += segment.injected;
        self.delivered += segment.delivered;
        self.dropped += segment.dropped;
    }

    fn flush(&self, state: &RunState, end_slot: u64, epoch_slots: u64) -> EpochMetrics {
        // Delivered packets are charged against what could possibly be
        // delivered this epoch: fresh injections plus the carried-in
        // backlog. Charging injections alone over-counts while a backlog
        // drains (the pre-fix committed recovery_post_delivery_pct of
        // 100.4 was exactly that artifact).
        let deliverable = self.injected + self.backlog_start;
        let delivery_pct = if deliverable == 0 {
            100.0
        } else {
            self.delivered as f64 / deliverable as f64 * 100.0
        };
        let (_, verdict) = state.session.analytic_loads();
        EpochMetrics {
            epoch: self.start_slot / epoch_slots,
            start_slot: self.start_slot,
            end_slot,
            injected: self.injected,
            delivered: self.delivered,
            dropped: self.dropped,
            backlog_start: self.backlog_start,
            backlog_end: state.session.totals().in_flight,
            delivery_pct,
            stable: verdict.is_stable(),
        }
    }
}

/// The live state of one run: session, schedule, and fault bookkeeping.
struct RunState {
    env: RadioEnvironment,
    gateways: Vec<NodeId>,
    base_demands: DemandVector,
    session: TrafficSession,
    schedule: Schedule,
    sources: Vec<Source>,
    frame_slots_initial: u64,
    route_seed: u64,
    /// Canonically ordered endpoints of explicitly failed links.
    dead_links: BTreeSet<(NodeId, NodeId)>,
    /// Explicitly failed nodes.
    dead_nodes: BTreeSet<NodeId>,
    /// Flows stopped by churn events.
    stopped: BTreeSet<NodeId>,
    /// Flows deferred by admission control.
    deferred: BTreeSet<NodeId>,
    /// Sources currently cut off from every gateway.
    cut_off: BTreeSet<NodeId>,
    repairs: Vec<RepairRecord>,
}

impl RunState {
    fn start(harness: &ResilienceHarness, seed: u64) -> Result<Self, ResilienceError> {
        let env = harness.env.clone();
        let graph = env.communication_graph();
        let (forest, _) = RoutingForest::shortest_path_partial(&graph, &harness.gateways, seed)?;
        let demands = effective_demands(&harness.demands, &forest, &BTreeSet::new());
        let link_demands = LinkDemands::aggregate(&forest, &demands)?;
        let schedule = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
        let frame_slots = schedule.length() as u64;
        if frame_slots == 0 {
            return Err(ResilienceError::NoSources);
        }
        let sources: Vec<Source> = (0..demands.len() as u32)
            .map(NodeId::new)
            .filter(|&v| demands.demand(v) > 0 && forest.is_reachable(v) && !forest.is_gateway(v))
            .map(|v| Source {
                node: v,
                arrival: ArrivalProcess::deterministic(
                    harness.rho * demands.demand(v) as f64 / frame_slots as f64,
                ),
            })
            .collect();
        if sources.is_empty() {
            return Err(ResilienceError::NoSources);
        }
        let session = TrafficSession::new(
            FrameService::from_schedule(&schedule),
            sources.clone(),
            ForwardingTable::from_forest(&forest),
            TrafficConfig::new(1).with_seed(seed),
        )?;
        Ok(Self {
            env,
            gateways: harness.gateways.clone(),
            base_demands: harness.demands.clone(),
            session,
            schedule,
            sources,
            frame_slots_initial: frame_slots,
            route_seed: seed,
            dead_links: BTreeSet::new(),
            dead_nodes: BTreeSet::new(),
            stopped: BTreeSet::new(),
            deferred: BTreeSet::new(),
            cut_off: BTreeSet::new(),
            repairs: Vec::new(),
        })
    }

    /// Applies one fault to the bookkeeping and the live session. Routing
    /// and scheduling consequences are handled by `reschedule`.
    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown(link) => {
                self.dead_links.insert(endpoints(link));
                self.session.fail_link(link);
                self.session.fail_link(link.reversed());
            }
            FaultKind::LinkUp(link) => {
                self.dead_links.remove(&endpoints(link));
                if !self.touches_dead_node(link) {
                    self.session.restore_link(link);
                    self.session.restore_link(link.reversed());
                }
            }
            FaultKind::NodeDown(node) => {
                self.dead_nodes.insert(node);
                for link in self.incident_links(node) {
                    self.session.fail_link(link);
                    self.session.fail_link(link.reversed());
                }
            }
            FaultKind::NodeUp(node) => {
                self.dead_nodes.remove(&node);
                for link in self.incident_links(node) {
                    let other = if link.head == node {
                        link.tail
                    } else {
                        link.head
                    };
                    if self.dead_nodes.contains(&other)
                        || self.dead_links.contains(&endpoints(link))
                    {
                        continue;
                    }
                    self.session.restore_link(link);
                    self.session.restore_link(link.reversed());
                }
            }
            FaultKind::Fade { sigma_db, seed } => {
                self.env = self.env.refaded(sigma_db, seed);
            }
            FaultKind::FlowStop(node) => {
                self.stopped.insert(node);
            }
            FaultKind::FlowStart(node) => {
                self.stopped.remove(&node);
            }
        }
    }

    /// Every communication-graph link incident to `node`, as drawn links.
    fn incident_links(&self, node: NodeId) -> Vec<Link> {
        self.env
            .communication_graph()
            .edges()
            .filter(|&(u, v)| u == node || v == node)
            .map(|(u, v)| Link::new(u, v))
            .collect()
    }

    fn touches_dead_node(&self, link: Link) -> bool {
        self.dead_nodes.contains(&link.head) || self.dead_nodes.contains(&link.tail)
    }

    /// The communication graph with every dead node and link pruned.
    fn pruned_graph(&self) -> Graph {
        let dead_nodes: Vec<NodeId> = self.dead_nodes.iter().copied().collect();
        self.env
            .communication_graph()
            .without_nodes(&dead_nodes)
            .without_edges(self.dead_links.iter().copied())
    }

    /// Reroutes demands around the current fault state, repairs the frame
    /// and swaps both into the live session.
    fn reschedule(&mut self, slot: u64) -> Result<(), ResilienceError> {
        scream_obs::counter_add("resilience.reschedules", 1);
        let (forest, cut) = RoutingForest::shortest_path_partial(
            &self.pruned_graph(),
            &self.gateways,
            self.route_seed,
        )?;
        self.cut_off = cut.into_iter().collect();
        let demands = effective_demands(&self.base_demands, &forest, &self.dead_nodes);
        let link_demands = LinkDemands::aggregate(&forest, &demands)?;
        if link_demands.total_demand() == 0 {
            // Everything is dead or cut off; keep the old frame (nothing can
            // route anyway) and let the pause-state sync silence the sources.
            self.cut_off.extend(self.sources.iter().map(|s| s.node));
            self.session.rescue_stranded();
            return Ok(());
        }
        let before = self.schedule.length() as u64;
        let repaired = repair_schedule(&self.env, &self.schedule, &link_demands);
        let routes = ForwardingTable::from_forest(&forest);
        let frame_changed = repaired.schedule != self.schedule;
        let routes_changed = &routes != self.session.routes();
        if frame_changed {
            self.session
                .swap_frame(FrameService::from_schedule(&repaired.schedule))?;
        }
        if routes_changed {
            self.session.set_routes(routes);
        }
        if frame_changed || routes_changed {
            self.repairs.push(RepairRecord {
                slot,
                outcome: repaired.outcome,
                frame_slots_before: before,
                frame_slots_after: repaired.schedule.length() as u64,
                removed_allocation: repaired.removed_allocation,
                added_allocation: repaired.added_allocation,
            });
            self.schedule = repaired.schedule;
        }
        self.session.rescue_stranded();
        Ok(())
    }

    /// Aligns every source's pause flag with the fault, churn, admission
    /// and reachability state.
    fn sync_pause_states(&mut self) {
        for i in 0..self.sources.len() {
            let node = self.sources[i].node;
            let want_paused = self.stopped.contains(&node)
                || self.dead_nodes.contains(&node)
                || self.cut_off.contains(&node)
                || self.deferred.contains(&node);
            if want_paused {
                self.session.pause_source(node);
            } else {
                self.session.resume_source(node);
            }
        }
    }

    /// Admission control: first re-admit every admission-deferred source,
    /// then — while the analytic verdict is Overloaded — defer the
    /// highest-rate active source crossing a bottleneck link.
    fn admit(&mut self) {
        self.deferred.clear();
        self.sync_pause_states();
        loop {
            let (_, verdict) = self.session.analytic_loads();
            let StabilityVerdict::Overloaded { bottlenecks } = verdict else {
                break;
            };
            // BTreeSet keeps the whole admission path hash-free (D1.iter):
            // the bottleneck set is tiny and only `contains`-probed.
            let hot: BTreeSet<Link> = bottlenecks.iter().map(|b| b.link).collect();
            let mut candidate: Option<(f64, NodeId)> = None;
            for source in &self.sources {
                if self.session.is_source_paused(source.node) {
                    continue;
                }
                let crosses_hot = self
                    .session
                    .routes()
                    .path_links(source.node)
                    .iter()
                    .any(|l| hot.contains(l));
                if !crosses_hot {
                    continue;
                }
                let rate = source.arrival.mean_rate();
                let better = match candidate {
                    None => true,
                    Some((best_rate, best_node)) => {
                        rate > best_rate || (rate == best_rate && source.node < best_node)
                    }
                };
                if better {
                    candidate = Some((rate, source.node));
                }
            }
            let Some((_, node)) = candidate else {
                // Every bottlenecked source is already silent; nothing more
                // admission can do (e.g. an unserved link in the baseline).
                break;
            };
            self.deferred.insert(node);
            self.session.pause_source(node);
        }
    }

    fn into_report(
        self,
        trace: &ChurnTrace,
        horizon_slots: u64,
        epochs: Vec<EpochMetrics>,
    ) -> ResilienceReport {
        let first_fault_slot = trace.first_slot().filter(|&s| s < horizon_slots);

        // Recovery is structural: an epoch counts as recovered when nothing
        // was dropped, the analytic verdict is Stable, and the backlog is
        // back in the pre-fault band (pre-fault peak plus one in-flight
        // packet per source — per-epoch delivery ratios fluctuate with
        // boundary carryover, backlog drain does not). Sustained means
        // *every* later epoch holds it; the caller checks the recovery
        // threshold against `post_recovery_delivery_pct`.
        let allowance = self.sources.len() as u64;
        let prefault_cap = first_fault_slot
            .map(|fault| {
                epochs
                    .iter()
                    .filter(|e| e.end_slot <= fault)
                    .map(|e| e.backlog_end)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
            + allowance;
        let recovered_epoch =
            |e: &EpochMetrics| e.dropped == 0 && e.stable && e.backlog_end <= prefault_cap;
        let suffix_start = epochs
            .iter()
            .rposition(|e| !recovered_epoch(e))
            .map(|i| i + 1)
            .unwrap_or(0);
        let recovered = suffix_start < epochs.len();
        let (time_to_recover_slots, recovery_slot) = match (first_fault_slot, recovered) {
            (Some(fault), true) => {
                let start = epochs[suffix_start].start_slot.max(fault);
                (Some(start - fault), start)
            }
            (Some(_), false) => (None, horizon_slots),
            (None, _) => (None, 0),
        };

        let window_pct = |from: u64, to: u64| {
            // Deliveries over a window are bounded by the window's
            // injections plus the backlog carried into its first epoch
            // (epoch backlogs chain: one epoch's backlog_end is the next
            // one's backlog_start), so the ratio is mathematically <= 100.
            let mut injected = 0u64;
            let mut delivered = 0u64;
            let mut backlog_in: Option<u64> = None;
            for e in epochs
                .iter()
                .filter(|e| e.end_slot > from && e.start_slot < to)
            {
                backlog_in.get_or_insert(e.backlog_start);
                injected += e.injected;
                delivered += e.delivered;
            }
            let deliverable = injected + backlog_in.unwrap_or(0);
            if deliverable == 0 {
                100.0
            } else {
                delivered as f64 / deliverable as f64 * 100.0
            }
        };
        let (outage_delivery_pct, post_recovery_delivery_pct) = match first_fault_slot {
            Some(fault) => (
                window_pct(fault, recovery_slot.max(fault + 1)),
                window_pct(recovery_slot, horizon_slots.max(recovery_slot + 1)),
            ),
            None => (100.0, window_pct(0, horizon_slots)),
        };

        let totals = self.session.totals();
        let (_, verdict) = self.session.analytic_loads();
        ResilienceReport {
            frame_slots_initial: self.frame_slots_initial,
            horizon_slots,
            epochs,
            repairs: self.repairs,
            totals,
            first_fault_slot,
            time_to_recover_slots,
            outage_delivery_pct,
            post_recovery_delivery_pct,
            disruption_peak_backlog: totals.peak_backlog,
            deferred_flows: self.deferred.len(),
            final_verdict_stable: verdict.is_stable(),
        }
    }
}

/// Canonical (min, max) endpoints of an undirected link.
fn endpoints(link: Link) -> (NodeId, NodeId) {
    let (a, b) = (link.head, link.tail);
    (a.min(b), a.max(b))
}

/// `base` with dead and unreachable nodes zeroed.
fn effective_demands(
    base: &DemandVector,
    forest: &RoutingForest,
    dead_nodes: &BTreeSet<NodeId>,
) -> DemandVector {
    DemandVector::from_vec(
        (0..base.len() as u32)
            .map(|i| {
                let v = NodeId::new(i);
                if dead_nodes.contains(&v) || !forest.is_reachable(v) {
                    0
                } else {
                    base.demand(v)
                }
            })
            .collect(),
    )
}
