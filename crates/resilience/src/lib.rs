//! Fault injection and online recovery for SCREAM schedules.
//!
//! The rest of the workspace builds and evaluates schedules for a network
//! that never changes. This crate asks the operational question: **what
//! happens when it does?** Links fade and die, nodes reboot, flows come and
//! go — and a schedule computed for the old world keeps serving slots the
//! new world cannot use.
//!
//! Three pieces answer it:
//!
//! * [`fault`] — deterministic, seeded churn: a [`FaultPlan`] builds a
//!   slot-ordered [`ChurnTrace`] of link/node outages and repairs,
//!   shadowing re-fades and flow churn, either explicitly or drawn from a
//!   seeded distribution ([`FaultPlan::random_churn`]);
//! * [`rescheduler`] — the [`ResilienceHarness`] injects a trace into a
//!   live [`TrafficSession`](scream_traffic::TrafficSession), and after
//!   each fault reroutes demands around the damage, patches the frame with
//!   the incremental [`repair_schedule`](scream_scheduling::repair_schedule)
//!   (full rebuild as the verified fallback), rescues stranded packets and
//!   defers flows that no longer fit (admission control);
//! * [`report`] — graceful-degradation metrics: per-epoch delivery, packets
//!   stranded/rescued/lost, time-to-recover, frame-swap disruption cost and
//!   the final stability verdict ([`ResilienceReport`]).
//!
//! Everything is deterministic: the same harness, trace, horizon and seed
//! reproduce a byte-identical report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;
pub mod report;
pub mod rescheduler;

pub use fault::{ChurnConfig, ChurnTrace, FaultEvent, FaultKind, FaultPlan};
pub use report::{EpochMetrics, RepairRecord, ResilienceReport};
pub use rescheduler::{ReschedulerConfig, ResilienceError, ResilienceHarness};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::fault::{ChurnConfig, ChurnTrace, FaultEvent, FaultKind, FaultPlan};
    pub use crate::report::{EpochMetrics, RepairRecord, ResilienceReport};
    pub use crate::rescheduler::{ReschedulerConfig, ResilienceError, ResilienceHarness};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use scream_netsim::RadioEnvironment;
    use scream_topology::{DemandVector, GridDeployment, Link, NodeId, RoutingForest};

    /// A 4×4 grid with the four corners as gateways and unit demand at
    /// every mesh node — small enough to run fast, rich enough to reroute.
    fn grid_world() -> (RadioEnvironment, Vec<NodeId>, DemandVector) {
        let deployment = GridDeployment::new(4, 4, 200.0).build();
        let env = RadioEnvironment::builder().build(&deployment);
        let gateways = deployment.corner_nodes();
        let demands = DemandVector::from_vec(
            (0..deployment.len() as u32)
                .map(|i| u32::from(!gateways.contains(&NodeId::new(i))))
                .collect(),
        );
        (env, gateways, demands)
    }

    /// The uplink carrying the most traffic: the tree edge of the
    /// non-gateway node with the largest subtree (deterministic pick).
    fn busiest_uplink(env: &RadioEnvironment, gateways: &[NodeId], seed: u64) -> Link {
        let graph = env.communication_graph();
        let (forest, cut) = RoutingForest::shortest_path_partial(&graph, gateways, seed).unwrap();
        assert!(cut.is_empty(), "the test grid must be connected");
        (0..forest.node_count() as u32)
            .map(NodeId::new)
            .filter(|&v| !forest.is_gateway(v))
            .max_by_key(|&v| (forest.subtree(v).len(), std::cmp::Reverse(v)))
            .and_then(|v| forest.link_of(v))
            .expect("a non-gateway node with an uplink exists")
    }

    fn harness(rho: f64) -> ResilienceHarness {
        let (env, gateways, demands) = grid_world();
        ResilienceHarness::new(env, gateways, demands, rho)
    }

    #[test]
    fn a_failure_free_run_stays_stable_and_lossless() {
        let h = harness(0.8);
        let report = h.run(&ChurnTrace::default(), 600, 7).unwrap();
        assert!(report.final_verdict_stable);
        assert!(report.repairs.is_empty());
        assert_eq!(report.time_to_recover_slots, None);
        assert_eq!(report.totals.dropped, 0);
        assert!(report.delivery_pct() > 95.0, "{}", report.delivery_pct());
        assert_eq!(
            report.totals.injected,
            report.totals.delivered + report.totals.in_flight
        );
    }

    #[test]
    fn a_link_failure_without_repair_degrades_and_never_recovers() {
        let (env, gateways, demands) = grid_world();
        let dead = busiest_uplink(&env, &gateways, 7);
        let h = ResilienceHarness::new(env, gateways, demands, 0.8)
            .with_config(ReschedulerConfig::baseline());
        let probe = h.run(&ChurnTrace::default(), 1, 7).unwrap();
        let f0 = probe.frame_slots_initial;
        let horizon = 40 * f0;
        let trace = FaultPlan::new().link_down(dead, 10 * f0).build();
        let report = h.run(&trace, horizon, 7).unwrap();
        assert!(!report.final_verdict_stable, "dead link, no reroute");
        assert_eq!(report.time_to_recover_slots, None, "never recovers");
        assert!(
            report.delivery_pct() < 99.0,
            "strands accumulate: {}",
            report.delivery_pct()
        );
        assert!(report.totals.in_flight > 0, "stranded packets pile up");
        assert!(report.repairs.is_empty());
    }

    #[test]
    fn the_rescheduler_recovers_from_the_same_link_failure() {
        let (env, gateways, demands) = grid_world();
        let dead = busiest_uplink(&env, &gateways, 7);
        let h = ResilienceHarness::new(env, gateways, demands, 0.8);
        let probe = h.run(&ChurnTrace::default(), 1, 7).unwrap();
        let f0 = probe.frame_slots_initial;
        let horizon = 40 * f0;
        let trace = FaultPlan::new().link_down(dead, 10 * f0).build();
        let report = h.run(&trace, horizon, 7).unwrap();
        assert!(report.final_verdict_stable, "rerouted around the failure");
        assert!(!report.repairs.is_empty(), "a repair was installed");
        let ttr = report.time_to_recover_slots.expect("the run recovers");
        assert!(ttr < 30 * f0, "recovery within the horizon: {ttr} slots");
        assert!(
            report.post_recovery_delivery_pct >= 99.0,
            "sustained delivery restored: {}",
            report.post_recovery_delivery_pct
        );
        let repair = &report.repairs[0];
        assert_eq!(repair.slot, 10 * f0);
        assert!(repair.frame_slots_after > 0);
        assert_eq!(
            report.totals.injected,
            report.totals.delivered + report.totals.dropped + report.totals.in_flight,
            "packet conservation"
        );
    }

    /// Regression: delivery percentages used to exceed 100 when an epoch
    /// drained backlog carried in from earlier epochs (packets delivered on
    /// top of the epoch's own injections were divided by the epoch's
    /// injections alone). The denominator now counts that carry-in, so
    /// every ratio is mathematically <= 100.
    #[test]
    fn delivery_percentages_never_exceed_one_hundred() {
        let (env, gateways, demands) = grid_world();
        let dead = busiest_uplink(&env, &gateways, 7);
        let h = ResilienceHarness::new(env, gateways, demands, 0.8);
        let probe = h.run(&ChurnTrace::default(), 1, 7).unwrap();
        let f0 = probe.frame_slots_initial;
        let trace = FaultPlan::new().link_down(dead, 10 * f0).build();
        let report = h.run(&trace, 40 * f0, 7).unwrap();
        assert!(
            report
                .epochs
                .iter()
                .any(|e| e.delivered > e.injected && e.backlog_start > 0),
            "some epoch must drain carried-in backlog (the old >100% \
             trigger), or this test exercises nothing"
        );
        for e in &report.epochs {
            assert!(
                (0.0..=100.0).contains(&e.delivery_pct),
                "epoch {} delivery {}% out of range",
                e.epoch,
                e.delivery_pct
            );
            assert!(
                e.delivered <= e.injected + e.backlog_start,
                "epoch {} delivered more than was deliverable",
                e.epoch
            );
        }
        assert!((0.0..=100.0).contains(&report.outage_delivery_pct));
        assert!((0.0..=100.0).contains(&report.post_recovery_delivery_pct));
        assert!((0.0..=100.0).contains(&report.delivery_pct()));
    }

    #[test]
    fn a_node_outage_and_return_round_trips() {
        let (env, gateways, demands) = grid_world();
        let victim = busiest_uplink(&env, &gateways, 7).head;
        let h = ResilienceHarness::new(env, gateways, demands, 0.7);
        let probe = h.run(&ChurnTrace::default(), 1, 7).unwrap();
        let f0 = probe.frame_slots_initial;
        let trace = FaultPlan::new()
            .node_outage(victim, 8 * f0, 20 * f0)
            .build();
        let report = h.run(&trace, 44 * f0, 7).unwrap();
        assert!(report.final_verdict_stable, "the node came back");
        assert!(report.repairs.len() >= 2, "outage and return both repair");
        assert!(report.time_to_recover_slots.is_some());
        assert!(
            report.post_recovery_delivery_pct >= 99.0,
            "{}",
            report.post_recovery_delivery_pct
        );
        assert_eq!(report.deferred_flows, 0, "everyone re-admitted");
    }

    #[test]
    fn a_fade_mid_run_is_survivable() {
        let h = harness(0.6);
        let probe = h.run(&ChurnTrace::default(), 1, 7).unwrap();
        let f0 = probe.frame_slots_initial;
        let trace = FaultPlan::new().fade(10 * f0, 3.0, 99).build();
        let report = h.run(&trace, 30 * f0, 7).unwrap();
        // Admission control guarantees the verdict even if the faded world
        // needs a longer frame or cuts nodes off.
        assert!(report.final_verdict_stable);
    }

    #[test]
    fn flow_churn_pauses_and_resumes_injection() {
        let h = harness(0.8);
        let probe = h.run(&ChurnTrace::default(), 1, 7).unwrap();
        let f0 = probe.frame_slots_initial;
        let node = NodeId::new(5);
        let trace = FaultPlan::new().flow_churn(node, 5 * f0, 15 * f0).build();
        let report = h.run(&trace, 30 * f0, 7).unwrap();
        let churn_free = h.run(&ChurnTrace::default(), 30 * f0, 7).unwrap();
        assert!(
            report.totals.injected < churn_free.totals.injected,
            "a stopped flow injects less"
        );
        assert!(report.final_verdict_stable);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let h = harness(0.8);
        let (env, gateways, _) = grid_world();
        let dead = busiest_uplink(&env, &gateways, 3);
        let trace = FaultPlan::new()
            .link_outage(dead, 100, 300)
            .fade(200, 2.0, 5)
            .build();
        let a = h.run(&trace, 800, 3).unwrap();
        let b = h.run(&trace, 800, 3).unwrap();
        assert_eq!(a, b, "same inputs, byte-identical report");
    }

    #[test]
    fn degenerate_inputs_error_out() {
        let h = harness(0.8);
        assert_eq!(
            h.run(&ChurnTrace::default(), 0, 7),
            Err(ResilienceError::ZeroHorizon)
        );
        let (env, gateways, _) = grid_world();
        let zero = ResilienceHarness::new(env, gateways, DemandVector::from_vec(vec![0; 16]), 0.8);
        assert_eq!(
            zero.run(&ChurnTrace::default(), 100, 7),
            Err(ResilienceError::NoSources)
        );
    }
}
