//! Workspace-local stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so this crate provides
//! just enough of serde's surface for the workspace to compile: the
//! `Serialize`/`Deserialize` derive macros (re-exported from the sibling
//! no-op `serde_derive`) and empty marker traits of the same names. No
//! serialization is performed anywhere in the workspace yet; when it is
//! needed, point the workspace manifest at the real crates and delete these
//! shims — no source change is required.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::ser::Serialize`.
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::de::Deserialize`.
pub trait DeserializeMarker {}
