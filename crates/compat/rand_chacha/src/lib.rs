//! Workspace-local stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha stream cipher core (D. J. Bernstein's
//! construction, 8 double-rounds) driven as a deterministic random-number
//! generator: 32-byte seed in the key slots, 64-bit block counter, output
//! consumed as little-endian `u32` words. Per-seed determinism and
//! statistical quality match the real crate; the exact stream is not
//! guaranteed to be bit-identical to upstream `rand_chacha` (nothing in this
//! workspace depends on that).

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 double-rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (seed), constant across blocks.
    key: [u32; 8],
    /// 64-bit block counter plus 64-bit stream id (zero).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 4; // ChaCha8 = 8 rounds = 4 double-rounds.

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
