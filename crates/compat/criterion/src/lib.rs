//! Workspace-local stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible subset of criterion 0.5 that the workspace's benches
//! use: `Criterion`, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is real but simple: each benchmark is warmed up, then timed
//! over `sample_size` samples whose per-iteration counts are auto-calibrated
//! so a sample takes a measurable amount of wall-clock time. The median
//! sample is reported as `<group>/<id>  time: <median> (min … max)` on
//! stdout — enough to compare implementations locally and in CI logs. There
//! is no statistical regression machinery; swap in the real crate for that.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    /// Measured duration and iteration count of each sample.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it many times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~1 ms (or the routine is clearly slow).
        let mut iters: u64 = 1;
        let per_sample = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break iters;
            }
            iters = iters.saturating_mul(4);
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), per_sample));
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_and_report(group: &str, id: &BenchmarkId, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(2),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{group}/{id}  (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "{name:<56} time: {:>12} ({} … {})",
        format_ns(median),
        format_ns(min),
        format_ns(max)
    );
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_and_report(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report("", &id.into(), self.effective_sample_size(), f);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
