//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace builds without network access, so the real `serde_derive`
//! cannot be fetched. Nothing in the workspace serializes values yet — the
//! derives are forward-looking annotations — so the macros here accept the
//! same syntax and emit nothing. Swapping in the real crates requires no
//! source change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
