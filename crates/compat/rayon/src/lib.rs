//! Workspace-local stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of the rayon API the workspace uses — `par_iter()` /
//! `into_par_iter()`, `map`, `for_each` and `collect::<Vec<_>>()` — backed
//! by `std::thread::scope` with one worker per available core and an atomic
//! work-stealing cursor.
//!
//! Semantics the callers rely on and that this shim preserves:
//!
//! * **order preservation** — `collect` returns results in input order
//!   regardless of which thread ran which item, so parallel sweeps are
//!   deterministic;
//! * **panic propagation** — a panicking closure aborts the whole call, as
//!   with real rayon;
//! * closures only need `Fn + Sync`, items `Send`.
//!
//! Unlike real rayon there is no global thread pool (threads are spawned per
//! call) and no work splitting below item granularity. For the coarse-grained
//! scenario sweeps this crate is used for, per-call thread spawn cost is
//! noise compared to per-item work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on all available cores, preserving input order.
fn parallel_apply<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

/// Parallel-iterator core, mirroring `rayon::iter`.
pub mod iter {
    use super::parallel_apply;

    /// Types whose parallel results can be collected into `Self`.
    pub trait FromParallelIterator<T> {
        /// Builds `Self` from the in-order results.
        fn from_ordered_results(results: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_results(results: Vec<T>) -> Self {
            results
        }
    }

    /// A parallel iterator over `Item`s.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Materializes all items in input order, running any pending
        /// per-item work on all available cores.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps every item through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            parallel_apply(self.drive(), f);
        }

        /// Collects the items in input order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_ordered_results(self.drive())
        }
    }

    /// A parallel iterator over owned values.
    pub struct IntoIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoIter<T> {
        type Item = T;

        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// A parallel iterator over shared references into a slice.
    pub struct SliceIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn drive(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
    }

    /// The adapter returned by [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;

        fn drive(self) -> Vec<R> {
            parallel_apply(self.base.drive(), self.f)
        }
    }

    /// Conversion into a parallel iterator, mirroring
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoIter<T>;

        fn into_par_iter(self) -> IntoIter<T> {
            IntoIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = IntoIter<usize>;

        fn into_par_iter(self) -> IntoIter<usize> {
            IntoIter {
                items: self.collect(),
            }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn into_par_iter(self) -> SliceIter<'a, T> {
            SliceIter { items: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn into_par_iter(self) -> SliceIter<'a, T> {
            SliceIter { items: self }
        }
    }

    /// `par_iter()` on shared slices, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The element type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoParallelIterator,
    {
        type Item = <&'a C as IntoParallelIterator>::Item;
        type Iter = <&'a C as IntoParallelIterator>::Iter;

        fn par_iter(&'a self) -> Self::Iter {
            self.into_par_iter()
        }
    }
}

/// Commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_runs_once_per_item() {
        let counter = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = Vec::<i32>::new().par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * x)
            .collect();
        assert_eq!(out[3], 16);
        assert_eq!(out.len(), 64);
    }
}
