//! Workspace-local stand-in for the `proptest` property-testing harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with implementations for integer/float ranges,
//!   tuples of strategies, and [`collection::vec`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   which expands each property into a `#[test]` that samples the declared
//!   strategies for `cases` deterministic cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`], which fail the current case
//!   with a message instead of unwinding mid-sample.
//!
//! There is no shrinking: a failing case reports its case index and the
//! failure message, and the deterministic per-case seeding (`case index` →
//! ChaCha8 stream) makes every failure reproducible by rerunning the test.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies, fixed to ChaCha8 for determinism.
pub type TestRng = ChaCha8Rng;

/// Error raised by a failing property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list of values.
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Generates values drawn uniformly from `values`, mirroring
    /// `proptest::sample::select`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }
}

/// The `prop` namespace, mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runs one property over `cases` deterministic samples. Called by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_cases(
    config: &ProptestConfig,
    property_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    use rand::SeedableRng;
    for index in 0..config.cases {
        // Per-case deterministic stream, distinct across properties.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in property_name.bytes() {
            seed = (seed ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(index as u64));
        if let Err(error) = case(&mut rng) {
            panic!("property '{property_name}' failed at case {index}: {error}");
        }
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strategy), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case if the condition does not hold, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case if the two values differ, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed (left: `{:?}`, right: `{:?}`): {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal, mirroring
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..=9, y in 0u64..100) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 100);
        }

        #[test]
        fn select_draws_from_the_list(c in prop::sample::select(vec![1usize, 2, 4])) {
            prop_assert!([1, 2, 4].contains(&c));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for (a, b) in &v {
                prop_assert!((0.0..1.0).contains(a));
                prop_assert!((0.0..1.0).contains(b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 0u32..10) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_its_case() {
        crate::run_cases(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("nope")) },
        );
    }
}
