//! Workspace-local stand-in for the `rand` facade.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the small slice of the rand 0.8 API the workspace uses:
//! [`RngCore`], [`Rng`] (`gen_range` over integer/float ranges and
//! `gen_bool`), [`SeedableRng`] (including the SplitMix64-based
//! `seed_from_u64` used by rand_core 0.6), and [`seq::SliceRandom::choose`].
//!
//! The uniform samplers are unbiased for the value ranges the workspace
//! draws (Lemire-style widening multiplication for integers, 53-bit mantissa
//! scaling for floats). Streams are deterministic per seed but are not
//! guaranteed to be bit-identical to upstream rand's samplers; everything in
//! the workspace that depends on randomness only relies on per-seed
//! determinism and distributional properties.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to draw a uniform sample from an [`RngCore`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` via widening multiplication with rejection
/// (Lemire's method), unbiased for every span.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // threshold = 2^64 mod span; rejecting products with a low half below it
    // leaves every quotient equally likely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn uniform_f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let v = self.start + uniform_f64_unit(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        start + uniform_f64_unit(rng) * (end - start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// User-facing random value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        uniform_f64_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same expansion
    /// rand_core 0.6 uses) and constructs the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing uniform element selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if the slice is
        /// empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((*rng).gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer, good enough for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 31)
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn degenerate_inclusive_range_returns_the_single_value() {
        let mut rng = Counter(1);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(4u32..=4), 4);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_empty_and_nonempty() {
        use seq::SliceRandom;
        let mut rng = Counter(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10u8, 20, 30];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
    }
}
