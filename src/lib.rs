//! # SCREAM: distributed STDMA scheduling with physical interference
//!
//! A from-scratch Rust reproduction of *"The SCREAM Approach for Efficient
//! Distributed Scheduling with Physical Interference in Wireless Mesh
//! Networks"* (Brar, Blough, Santi — ICDCS 2008 / IIT TR-08/2006).
//!
//! This facade crate re-exports the workspace's building blocks so an
//! application can depend on a single crate:
//!
//! * [`topology`] — deployments, communication/sensitivity graphs, routing
//!   forests and traffic demands (`scream-topology`);
//! * [`netsim`] — propagation, SINR, carrier sensing, clocks and the
//!   discrete-event engine (`scream-netsim`);
//! * [`scheduling`] — schedules, verification, the centralized
//!   GreedyPhysical baseline and the serialized baseline
//!   (`scream-scheduling`);
//! * [`protocols`] — the SCREAM primitive, leader election and the PDD /
//!   FDD / AFDD distributed schedulers (`scream-core`);
//! * [`traffic`] — the packet-level traffic engine: flows, per-link FIFO
//!   queues and delay/throughput/stability metrics over any schedule used as
//!   a repeating TDMA frame (`scream-traffic`);
//! * [`resilience`] — fault injection and online recovery: seeded churn
//!   traces, the epoch rescheduler and graceful-degradation metrics
//!   (`scream-resilience`);
//! * [`mote`] — the Mica2 SCREAM-detection experiment simulation
//!   (`scream-mote`);
//! * [`analysis`] — empirical checks of the paper's theorems
//!   (`scream-analysis`).
//!
//! # Quickstart
//!
//! ```
//! use scream::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Deploy a 4x4 mesh with one gateway and draw per-node demands.
//! let deployment = GridDeployment::new(4, 4, 150.0).build();
//! let env = RadioEnvironment::builder().build(&deployment);
//! let graph = env.communication_graph();
//! let gateways = vec![deployment.corner_nodes()[0]];
//! let forest = RoutingForest::shortest_path(&graph, &gateways, 7).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let demands = DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
//! let link_demands = LinkDemands::aggregate(&forest, &demands).unwrap();
//!
//! // 2. Run the distributed FDD protocol and the centralized baseline.
//! let config = ProtocolConfig::paper_default()
//!     .with_scream_slots(env.interference_diameter());
//! let fdd = DistributedScheduler::fdd().with_config(config).run(&env, &link_demands).unwrap();
//! let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
//!
//! // 3. FDD provably recreates the centralized schedule (Theorem 4), and
//! //    both satisfy every demand with SINR-feasible slots.
//! assert_eq!(fdd.schedule, centralized);
//! verify_schedule(&env, &fdd.schedule, &link_demands).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Node deployments, graphs, routing forests and demands (`scream-topology`).
pub mod topology {
    pub use scream_topology::*;
}

/// Radio-level simulation: propagation, SINR, carrier sensing, clocks and the
/// discrete-event engine (`scream-netsim`).
pub mod netsim {
    pub use scream_netsim::*;
}

/// STDMA schedules, verification and centralized baselines
/// (`scream-scheduling`).
pub mod scheduling {
    pub use scream_scheduling::*;
}

/// The SCREAM primitive, leader election and the distributed PDD/FDD/AFDD
/// schedulers (`scream-core`).
pub mod protocols {
    pub use scream_core::*;
}

/// The packet-level traffic engine: flows, queues and delay/throughput
/// metrics over SCREAM TDMA frames (`scream-traffic`).
pub mod traffic {
    pub use scream_traffic::*;
}

/// Fault injection and online recovery: seeded churn traces, the epoch
/// rescheduler and graceful-degradation metrics (`scream-resilience`).
pub mod resilience {
    pub use scream_resilience::*;
}

/// The simulated Mica2 SCREAM-detection experiment (`scream-mote`).
pub mod mote {
    pub use scream_mote::*;
}

/// Empirical checks of the paper's analytical results (`scream-analysis`).
pub mod analysis {
    pub use scream_analysis::*;
}

/// Deterministic observability: the slot-clock metrics registry, trace ring
/// and no-op-able emission sink (`scream-obs`).
pub mod obs {
    pub use scream_obs::*;
}

/// One-stop import of the most commonly used items across all crates.
pub mod prelude {
    pub use scream_core::prelude::*;
    pub use scream_mote::prelude::*;
    pub use scream_netsim::prelude::*;
    pub use scream_resilience::prelude::*;
    pub use scream_scheduling::prelude::*;
    pub use scream_topology::prelude::*;
    pub use scream_traffic::prelude::*;
}
