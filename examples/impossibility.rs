//! The constructive content of Theorem 1: why *localized* distributed
//! scheduling cannot work under the physical interference model, and why the
//! SCREAM primitive's global reach is necessary.
//!
//! The example builds the line-network counterexample from the proof sketch,
//! runs a strawman localized greedy scheduler on it, and shows that the slot
//! it produces violates the SINR constraints — while the global check used by
//! GreedyPhysical/FDD rejects the offending link.
//!
//! Run with: `cargo run --release --example impossibility`

use scream::protocols::impossibility::{CounterExample, LocalizedGreedy};

fn main() {
    for k in [1usize, 2, 4] {
        let ce = CounterExample::for_locality(k);
        let env = ce.environment();
        let graph = env.communication_graph();
        let separation = ce.link_separation_hops(&graph);

        println!(
            "locality k = {k}: line of {} nodes, candidate links {} and {} are {} hops apart",
            ce.deployment.len(),
            ce.link_l,
            ce.link_l_prime,
            separation
        );
        println!(
            "  each link alone satisfies the SINR threshold ({:.1} dB): l -> {}, l' -> {}",
            ce.sinr_threshold_db,
            env.slot_feasible(&[ce.link_l]),
            env.slot_feasible(&[ce.link_l_prime]),
        );
        println!(
            "  both links in the same slot are feasible under the physical model: {}",
            env.slot_feasible(&[ce.link_l, ce.link_l_prime])
        );

        // The strawman localized scheduler admits both links, because each
        // decision only consults links within k hops.
        let localized = LocalizedGreedy::new(k);
        let mut slot = Vec::new();
        if localized.admits(&env, &graph, &slot, ce.link_l) {
            slot.push(ce.link_l);
        }
        let admitted_second = localized.admits(&env, &graph, &slot, ce.link_l_prime);
        if admitted_second {
            slot.push(ce.link_l_prime);
        }
        println!(
            "  localized greedy (k = {k}) admitted the far link: {admitted_second}; resulting slot feasible: {}",
            env.slot_feasible(&slot)
        );
        println!(
            "  global SINR check (what FDD's handshake + SCREAM veto implements): admits far link = {}",
            env.can_add_to_slot(&[ce.link_l], ce.link_l_prime)
        );
        println!();
    }
    println!("A localized rule builds infeasible slots on these instances for every constant k;");
    println!("the SCREAM-based protocols avoid this by verifying each slot with a network-wide primitive.");
}
