//! Churn recovery: fail the busiest uplink of the paper's 64-node grid
//! mid-run and watch the online rescheduler route around it.
//!
//! The same seeded single-link failure is run twice at 80% offered load:
//! once with the no-repair baseline (the outage strands every packet routed
//! over the dead link, and the analytic verdict goes Overloaded) and once
//! with the full rescheduler (reroute around the dead link, incremental
//! frame repair, admission control). The example exits non-zero unless the
//! rescheduler ends Stable with >= 98.5% sustained delivery after recovery
//! (the shortfall from 100% is the in-flight pipeline at the horizon, not
//! loss) — CI runs it as the resilience smoke test.
//!
//! Run with: `cargo run --release --example churn_recovery`

use scream_bench::{PaperScenario, RecoveryExperiment};

fn main() {
    // The paper's evaluation grid: 64 nodes at density 2000 m^2/node, four
    // gateway sinks, per-node demands drawn from the paper's distribution.
    let instance = PaperScenario::grid(2_000.0).instantiate(7);
    let experiment = RecoveryExperiment::from_instance(&instance);
    let failed = experiment.failed_link();
    println!(
        "scenario: {} nodes, seed {}, failing busiest uplink {failed} at T/4",
        instance.deployment.len(),
        instance.seed,
    );

    // One seeded fault, two arms: no-repair baseline vs. online rescheduler.
    let point = experiment.single_link_outage(0.8, 40);
    println!(
        "frame: {} slots, horizon: {} frames, fault at slot {}",
        point.frame_slots_initial, 40, point.fault_slot
    );
    println!(
        "baseline   delivery {:>6.2}% | outage delivery {:>6.2}% | verdict {}",
        point.baseline_delivery_pct,
        point.baseline_outage_delivery_pct,
        if point.baseline_stable {
            "Stable"
        } else {
            "Overloaded"
        }
    );
    println!(
        "reschedule delivery {:>6.2}% | outage delivery {:>6.2}% | verdict {}",
        point.delivery_pct,
        point.outage_delivery_pct,
        if point.stable { "Stable" } else { "Overloaded" }
    );
    println!(
        "recovery: {} repair(s) ({} incremental), time-to-recover {}, \
         peak backlog {} packets, post-recovery delivery {:.2}%",
        point.repairs,
        point.incremental_repairs,
        match point.time_to_recover_slots {
            Some(slots) => format!("{slots} slots"),
            None => "never".to_string(),
        },
        point.disruption_peak_backlog,
        point.post_recovery_delivery_pct,
    );

    // The acceptance gate: the baseline must visibly degrade, and the
    // rescheduler must restore a Stable, near-100%-delivery steady state.
    // The ratio counts the backlog carried into the post-recovery window,
    // so it is <= 100 by construction and sits just under 100 because the
    // horizon cuts through the in-flight pipeline.
    assert!(
        !point.baseline_stable,
        "the dead uplink must overload the no-repair baseline"
    );
    assert!(
        point.stable,
        "the rescheduler must end with a Stable verdict"
    );
    assert!(
        point.post_recovery_delivery_pct >= 98.5 && point.post_recovery_delivery_pct <= 100.0,
        "sustained post-recovery delivery must reach 98.5% (got {:.2}%)",
        point.post_recovery_delivery_pct
    );
    point
        .time_to_recover_slots
        .expect("the rescheduler must reach sustained recovery before the horizon");
    println!("recovered: Stable verdict with >= 98.5% sustained delivery after the fault");
}
