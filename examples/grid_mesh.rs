//! The planned-grid scenario of the paper's Figure 6: a 64-node mesh backbone
//! laid out on a grid with homogeneous transmit power and 4 gateways, with
//! node density varied by shrinking the deployment area.
//!
//! For each density the example runs the centralized GreedyPhysical baseline,
//! the distributed FDD protocol and PDD with the three activation
//! probabilities the paper evaluates, and prints the percentage improvement
//! of each schedule over the serialized (one-link-per-slot) schedule.
//!
//! Run with: `cargo run --release --example grid_mesh`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scream::prelude::*;
use scream::protocols::ProtocolKind;
use scream::topology::density_to_area_m2;

/// Builds the 64-node planned scenario at a given density and returns the
/// radio environment together with the aggregated link demands.
fn build_instance(density_per_km2: f64, seed: u64) -> (RadioEnvironment, LinkDemands) {
    let nodes = 64;
    let area_m2 = density_to_area_m2(nodes, density_per_km2);
    let step = (area_m2 / nodes as f64).sqrt();
    let deployment = GridDeployment::new(8, 8, step).tx_power_dbm(10.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .shadowing(4.0, seed)
        .config(RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
        .build(&deployment);

    let graph = env.communication_graph();
    assert!(graph.is_connected(), "the grid must form a connected mesh");
    let gateways = deployment.corner_nodes();
    let forest = RoutingForest::shortest_path(&graph, &gateways, seed).expect("connected");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let demands = DemandVector::generate(nodes, DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).expect("sizes match");
    (env, link_demands)
}

fn improvement(schedule: &scream::scheduling::Schedule, demands: &LinkDemands) -> f64 {
    ScheduleMetrics::compute(schedule, demands).improvement_over_linear_pct
}

fn main() {
    println!(
        "64-node planned grid, 4 gateways, demand U[1,10], log-distance alpha=3 + 4 dB shadowing"
    );
    println!(
        "{:>10}  {:>12}  {:>8}  {:>10}  {:>10}  {:>10}",
        "density", "Centralized", "FDD", "PDD p=0.2", "PDD p=0.6", "PDD p=0.8"
    );
    for density in [1_000.0, 5_000.0, 10_000.0, 25_000.0] {
        let (env, link_demands) = build_instance(density, 7);
        let config = ProtocolConfig::paper_default()
            .with_scream_slots(env.interference_diameter().max(5))
            .with_seed(7);

        let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
        verify_schedule(&env, &centralized, &link_demands).expect("centralized schedule valid");
        let fdd = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env, &link_demands)
            .expect("FDD completes");
        verify_schedule(&env, &fdd.schedule, &link_demands).expect("FDD schedule valid");

        let mut pdd_improvements = Vec::new();
        for p in [0.2, 0.6, 0.8] {
            let run = DistributedScheduler::new(ProtocolKind::pdd_unchecked(p), config)
                .run(&env, &link_demands)
                .expect("PDD completes");
            verify_schedule(&env, &run.schedule, &link_demands).expect("PDD schedule valid");
            pdd_improvements.push(improvement(&run.schedule, &link_demands));
        }

        println!(
            "{:>10.0}  {:>12.1}  {:>8.1}  {:>10.1}  {:>10.1}  {:>10.1}",
            density,
            improvement(&centralized, &link_demands),
            improvement(&fdd.schedule, &link_demands),
            pdd_improvements[0],
            pdd_improvements[1],
            pdd_improvements[2],
        );
    }
    println!();
    println!("FDD always matches the centralized GreedyPhysical schedule (Theorem 4);");
    println!("PDD trails it, with the low activation probability closest — the Figure 6 ordering.");
}
