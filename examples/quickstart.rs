//! Quickstart: build a small wireless mesh, aggregate traffic demands along a
//! routing forest, schedule the links with the distributed FDD protocol, and
//! check the result against the centralized GreedyPhysical baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scream::prelude::*;

fn main() {
    // 1. A planned 5x5 mesh backbone, 150 m between routers, 20 dBm radios.
    let deployment = GridDeployment::new(5, 5, 150.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let graph = env.communication_graph();
    println!(
        "deployment: {} nodes, {} links, interference diameter {}",
        deployment.len(),
        graph.edge_count(),
        env.interference_diameter()
    );

    // 2. Route every node to the nearest of two gateways and aggregate the
    //    per-node demands (uniform in [1, 10]) along the forest.
    let gateways = vec![NodeId::new(0), NodeId::new(24)];
    let forest = RoutingForest::shortest_path(&graph, &gateways, 42).expect("grid is connected");
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).expect("sizes match");
    println!(
        "traffic: total demand {} packets over {} links (serialized schedule length {})",
        link_demands.total_demand(),
        link_demands.links().len(),
        link_demands.total_demand()
    );

    // 3. Run the distributed schedulers and the centralized baseline.
    let config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter())
        .with_seed(42);
    let fdd = DistributedScheduler::fdd()
        .with_config(config)
        .run(&env, &link_demands)
        .expect("FDD completes");
    let pdd = DistributedScheduler::pdd(0.6)
        .expect("PDD activation probability is in (0, 1]")
        .with_config(config)
        .run(&env, &link_demands)
        .expect("PDD completes");
    let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);

    // 4. Every schedule must satisfy all demands with SINR-feasible slots.
    verify_schedule(&env, &fdd.schedule, &link_demands).expect("FDD schedule is valid");
    verify_schedule(&env, &pdd.schedule, &link_demands).expect("PDD schedule is valid");
    verify_schedule(&env, &centralized, &link_demands).expect("centralized schedule is valid");

    for (name, schedule) in [
        ("centralized GreedyPhysical", &centralized),
        ("FDD (distributed)", &fdd.schedule),
        ("PDD p=0.6 (distributed)", &pdd.schedule),
    ] {
        let metrics = ScheduleMetrics::compute(schedule, &link_demands);
        println!("{name:<28} {metrics}");
    }
    println!(
        "FDD recreates the centralized schedule exactly: {}",
        fdd.schedule == centralized
    );
    println!(
        "protocol execution time: FDD {:.2}s ({} rounds), PDD {:.2}s ({} rounds)",
        fdd.execution_secs(),
        fdd.stats.rounds,
        pdd.execution_secs(),
        pdd.stats.rounds
    );

    // 5. Carry actual packets over the distributed schedule: every node
    //    streams traffic to its gateway at 80% of the frame's capacity.
    let frame = fdd.frame_service();
    let flows = FlowSet::along_forest(&forest, &demands, 0.8 / frame.frame_slots() as f64);
    let engine = TrafficEngine::new(frame, flows, TrafficConfig::new(200).with_seed(42))
        .expect("the FDD frame serves every demanded link");
    let report = engine.run();
    println!("traffic at 80% load: {report}");
    assert!(
        report.verdict.is_stable(),
        "sub-capacity load must be sustainable"
    );
}
