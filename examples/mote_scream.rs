//! The Section V mote experiment: can energy-detection carrier sensing
//! detect a SCREAM reliably even when six relays re-scream on top of each
//! other (deliberate collisions)?
//!
//! The example sweeps the SCREAM payload size and prints the detection-error
//! percentage (Figure 4), then prints a short snapshot of the monitor's
//! moving-average RSSI around two SCREAMs (Figure 5).
//!
//! Run with: `cargo run --release --example mote_scream`

use scream::mote::{DetectionErrorPoint, MoteExperiment, MoteExperimentConfig};
use scream::netsim::SimTime;

fn main() {
    // Figure 4: detection error vs SCREAM size (500 SCREAMs per point keeps
    // the example quick; the fig4_mote_error binary runs the paper's 2000).
    let base = MoteExperimentConfig::paper_default()
        .with_scream_count(500)
        .with_seed(3);
    println!("SCREAM detection on the simulated Mica2 testbed (1 initiator, 6 relays, 1 monitor)");
    println!(
        "{:>14}  {:>10}  {:>15}",
        "scream (bytes)", "error (%)", "detection rate"
    );
    for point in DetectionErrorPoint::sweep(base, &[2, 4, 6, 8, 10, 15, 20, 24, 32]) {
        println!(
            "{:>14}  {:>10.1}  {:>15.3}",
            point.scream_bytes, point.error_percentage, point.detection_rate
        );
    }
    println!();
    println!("Detection is unreliable below ~10 bytes and essentially error-free above ~20 bytes,");
    println!("matching the mote measurements in Section V of the paper.");
    println!();

    // Figure 5: moving-average RSSI trace for 24-byte SCREAMs.
    let result = MoteExperiment::new(base.with_scream_bytes(24))
        .run_with_trace(SimTime::from_millis(95), SimTime::from_millis(215));
    println!(
        "moving average of the monitor's RSSI around two 24-byte SCREAMs (threshold -60 dBm):"
    );
    for (time, value) in result.trace().moving_average_series() {
        let bar_len = ((value + 100.0).max(0.0) / 2.0) as usize;
        println!(
            "{:>8.1} ms  {:>7.1} dBm  |{}",
            time.as_secs_f64() * 1e3,
            value,
            "#".repeat(bar_len)
        );
    }
}
