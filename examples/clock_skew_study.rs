//! Execution-time sensitivity of the distributed protocols to clock skew and
//! to the SCREAM primitive's parameters (the Figure 8 / Figure 9 scenarios).
//!
//! Every step of PDD/FDD is globally synchronized, so each slot carries a
//! guard interval of twice the clock-skew bound. The example shows how the
//! wall-clock execution time of one full schedule computation grows with the
//! skew bound, the SCREAM payload size and the number of SCREAM slots `K`,
//! and checks the paper's operating guidance (schedule recomputation once per
//! minute is cheap for GPS-grade skew, marginal for millisecond skew).
//!
//! Run with: `cargo run --release --example clock_skew_study`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scream::prelude::*;

fn build_instance(seed: u64) -> (RadioEnvironment, LinkDemands) {
    let deployment = GridDeployment::new(6, 6, 120.0).build();
    let env = RadioEnvironment::builder()
        .propagation(PropagationModel::log_distance(3.0))
        .build(&deployment);
    let graph = env.communication_graph();
    let gateways = deployment.corner_nodes();
    let forest = RoutingForest::shortest_path(&graph, &gateways, seed).expect("connected");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).expect("sizes match");
    (env, link_demands)
}

fn main() {
    let (env, link_demands) = build_instance(5);
    let base_config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter().max(5))
        .with_seed(5);

    println!("36-node grid, total demand {}", link_demands.total_demand());
    println!();
    println!("execution time vs clock-skew bound (schedule recomputed once per minute):");
    println!(
        "{:>12}  {:>10}  {:>12}  {:>12}",
        "skew", "FDD (s)", "PDD0.2 (s)", "FDD overhead"
    );
    for (label, skew) in [
        ("perfect", ClockSkewConfig::PERFECT),
        ("1 us (GPS)", ClockSkewConfig::gps()),
        ("100 us", ClockSkewConfig::distributed_sync()),
        ("1 ms", ClockSkewConfig::new(SimTime::from_millis(1))),
        ("10 ms", ClockSkewConfig::new(SimTime::from_millis(10))),
        ("100 ms", ClockSkewConfig::new(SimTime::from_millis(100))),
    ] {
        let config = base_config.with_clock_skew(skew);
        let fdd = DistributedScheduler::fdd()
            .with_config(config)
            .run(&env, &link_demands)
            .expect("FDD completes");
        let pdd = DistributedScheduler::pdd(0.2)
            .expect("PDD activation probability is in (0, 1]")
            .with_config(config)
            .run(&env, &link_demands)
            .expect("PDD completes");
        println!(
            "{:>12}  {:>10.2}  {:>12.2}  {:>11.1}%",
            label,
            fdd.execution_secs(),
            pdd.execution_secs(),
            100.0 * fdd.execution_secs() / 60.0
        );
    }

    println!();
    println!("execution time vs SCREAM size and K (FDD, perfect clocks):");
    println!("{:>16}  {:>10}", "parameter", "FDD (s)");
    for bytes in [5usize, 15, 30, 60] {
        let run = DistributedScheduler::fdd()
            .with_config(base_config.with_scream_bytes(bytes))
            .run(&env, &link_demands)
            .expect("FDD completes");
        println!("{:>12} bytes  {:>10.2}", bytes, run.execution_secs());
    }
    for k in [5usize, 15, 30, 60] {
        let k = k.max(env.interference_diameter());
        let run = DistributedScheduler::fdd()
            .with_config(base_config.with_scream_slots(k))
            .run(&env, &link_demands)
            .expect("FDD completes");
        println!("{:>12} slots  {:>10.2}", k, run.execution_secs());
    }
    println!();
    println!(
        "The schedule itself never changes with these knobs — only the time to compute it does."
    );
}
