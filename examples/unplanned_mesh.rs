//! The unplanned scenario of the paper's Figure 7: 64 mesh routers dropped
//! uniformly at random with heterogeneous transmit powers, 4 gateways, and
//! traffic routed along a shortest-path forest.
//!
//! The example highlights two things the planned grid hides:
//!
//! * heterogeneous powers create *unidirectional* links, which the
//!   communication graph discards because link-layer ACKs are required;
//! * the randomized PDD protocol's schedule quality depends on its activation
//!   probability, while FDD remains glued to the centralized baseline.
//!
//! Run with: `cargo run --release --example unplanned_mesh`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scream::prelude::*;
use scream::protocols::ProtocolKind;

fn main() {
    let seed = 11u64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // 64 routers uniform in a 700 m x 700 m area, mean 10 dBm with a 6 dB
    // spread (the paper's "heterogeneous transmission power").
    let mut deployment = UniformDeployment::new(64, 700.0)
        .tx_power_dbm(12.0)
        .heterogeneous_power(6.0)
        .build(&mut rng);

    // Retry the draw until the SINR communication graph is connected.
    let env = loop {
        let env = RadioEnvironment::builder()
            .propagation(PropagationModel::log_distance(3.0))
            .config(RadioConfig::mesh_default().with_sinr_threshold_db(6.0))
            .build(&deployment);
        if env.communication_graph().is_connected() {
            break env;
        }
        deployment = UniformDeployment::new(64, 700.0)
            .tx_power_dbm(12.0)
            .heterogeneous_power(6.0)
            .build(&mut rng);
    };
    let graph = env.communication_graph();

    // How asymmetric did the heterogeneous powers make the physical layer?
    let mut one_way = 0usize;
    for u in deployment.node_ids() {
        for v in deployment.node_ids() {
            if u < v {
                let forward = env.decodable(u, v, &[]);
                let backward = env.decodable(v, u, &[]);
                if forward != backward {
                    one_way += 1;
                }
            }
        }
    }
    println!(
        "unplanned deployment: {} nodes, {} bidirectional links, {} one-way links discarded, ID(G_S) = {}",
        deployment.len(),
        graph.edge_count(),
        one_way,
        env.interference_diameter()
    );

    let gateways = deployment.corner_nodes();
    let forest = RoutingForest::shortest_path(&graph, &gateways, seed).expect("connected");
    let demands =
        DemandVector::generate(deployment.len(), DemandConfig::PAPER, &gateways, &mut rng);
    let link_demands = LinkDemands::aggregate(&forest, &demands).expect("sizes match");
    println!(
        "routing forest: {} gateways, max depth {}, total demand {}",
        gateways.len(),
        forest.max_depth(),
        link_demands.total_demand()
    );

    let config = ProtocolConfig::paper_default()
        .with_scream_slots(env.interference_diameter().max(5))
        .with_seed(seed);
    let centralized = GreedyPhysical::paper_baseline().schedule(&env, &link_demands);
    verify_schedule(&env, &centralized, &link_demands).expect("centralized valid");
    println!(
        "centralized GreedyPhysical: {}",
        ScheduleMetrics::compute(&centralized, &link_demands)
    );

    for kind in [
        ProtocolKind::Fdd,
        ProtocolKind::pdd_unchecked(0.8),
        ProtocolKind::pdd_unchecked(0.2),
    ] {
        let run = DistributedScheduler::new(kind, config)
            .run(&env, &link_demands)
            .expect("protocol completes");
        verify_schedule(&env, &run.schedule, &link_demands).expect("schedule valid");
        println!(
            "{:<12} {}  ({} rounds, {:.2}s of protocol execution)",
            kind.name(),
            ScheduleMetrics::compute(&run.schedule, &link_demands),
            run.stats.rounds,
            run.execution_secs()
        );
        if kind == ProtocolKind::Fdd {
            assert_eq!(
                run.schedule, centralized,
                "Theorem 4: FDD == GreedyPhysical"
            );
        }
    }
}
